"""Command-line interface.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro compile program.hpf --strategy comb --report --listing
    python -m repro compile program.hpf --all --check
    python -m repro simulate program.hpf --machine SP2 --param n=512
    python -m repro table          # regenerate the Figure 10 count table
    python -m repro charts         # regenerate the Figure 10 time charts
    python -m repro profile        # regenerate the Figure 5 curves
"""

from __future__ import annotations

import argparse
import json
import sys

from .codegen.report import annotated_listing, schedule_report
from .core.context import CompilerOptions
from .core.pipeline import Strategy, compile_program
from .errors import Diagnostic, ReproError
from .machine.model import MACHINES
from .runtime.checker import check_schedule
from .runtime.simulator import simulate


def _parse_params(items: list[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items:
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad --param {item!r}: expected NAME=INT")
        params[name.strip()] = int(value)
    return params


class _CliExit(Exception):
    """Internal: unwind to main() with an exit code (message already
    printed).  Not SystemExit, which tests expect to propagate for
    usage errors like bad --param values."""

    def __init__(self, code: int) -> None:
        super().__init__(code)
        self.code = code


def _read_source(path: str) -> str:
    """Read a source file; a missing file is a one-line diagnostic and
    exit code 2 (usage-style error), not a traceback."""
    try:
        with open(path) as fh:
            return fh.read()
    except FileNotFoundError:
        print(f"error: {path}: no such file", file=sys.stderr)
        raise _CliExit(2) from None
    except IsADirectoryError:
        print(f"error: {path}: is a directory", file=sys.stderr)
        raise _CliExit(2) from None


def _emit_diagnostics(
    diags: list[Diagnostic], filename: str, as_json: bool
) -> None:
    if as_json:
        print(json.dumps(
            {"file": filename, "diagnostics": [d.to_dict() for d in diags]},
            indent=2,
        ))
    else:
        for d in diags:
            print(d.format(filename), file=sys.stderr)


def _pass_options(args: argparse.Namespace) -> CompilerOptions:
    """CompilerOptions from the compile flags, validating pass names."""
    from .core.passes import PIPELINES, registered_passes

    passes = registered_passes()

    def check(name: str, disabling: bool) -> str:
        if name not in passes:
            known = ", ".join(sorted(passes))
            print(f"error: unknown pass {name!r} (known: {known})",
                  file=sys.stderr)
            raise _CliExit(2)
        if disabling and not passes[name].optimization:
            print(f"error: pass {name!r} is structural and cannot be "
                  f"disabled", file=sys.stderr)
            raise _CliExit(2)
        return name

    disabled = tuple(check(n, True) for n in args.disable_pass)
    pipeline = None
    if args.pipeline:
        if args.pipeline in PIPELINES:
            # A named pipeline (orig | nored | comb | exact) expands to
            # its registered pass list.
            pipeline = PIPELINES[args.pipeline]
        else:
            pipeline = tuple(
                check(n.strip(), False)
                for n in args.pipeline.split(",") if n.strip()
            )
    extra: dict = {}
    budget = getattr(args, "solver_budget_ms", None)
    if budget is not None:
        if budget < 0:
            print(f"error: --solver-budget-ms must be >= 0 (got {budget})",
                  file=sys.stderr)
            raise _CliExit(2)
        extra["solver_budget_ms"] = budget
    machine = getattr(args, "machine", None)
    if machine is not None:
        extra["machine"] = machine
    threshold = getattr(args, "threshold_bytes", None)
    if threshold is not None:
        if threshold <= 0:
            print(f"error: --threshold-bytes must be > 0 (got {threshold})",
                  file=sys.stderr)
            raise _CliExit(2)
        extra["combine_threshold_bytes"] = threshold
    return CompilerOptions(
        strict=args.strict,
        disabled_passes=disabled,
        pass_pipeline=pipeline,
        **extra,
    )


def cmd_compile(args: argparse.Namespace) -> int:
    options = _pass_options(args)
    if args.list_passes:
        from .core.passes import format_pass_list, list_passes

        print(format_pass_list(list_passes(options)))
        return 0
    if not args.file:
        print("error: compile: a source file is required "
              "(or use --list-passes)", file=sys.stderr)
        return 2
    source = _read_source(args.file)
    params = _parse_params(args.param)
    strategies = list(Strategy) if args.all else [Strategy.parse(args.strategy)]
    from .core.passes import registered_passes

    known_passes = registered_passes()
    dump_after = tuple(args.dump_after)
    for name in dump_after:
        if name not in known_passes:
            known = ", ".join(sorted(known_passes))
            print(f"error: unknown pass {name!r} (known: {known})",
                  file=sys.stderr)
            return 2

    # Recovery pre-pass: surface every syntax error in one run (up to
    # --max-errors) instead of stopping at the first.
    from .frontend.parser import parse_recovering

    _program, errors = parse_recovering(source, max_errors=args.max_errors)
    if errors:
        _emit_diagnostics(
            [e.diagnostic() for e in errors], args.file, args.diagnostics_json
        )
        return 1

    diagnostics: list[Diagnostic] = []
    trace_records: list[dict] = []
    machine_output = args.diagnostics_json or args.trace_json
    for strategy in strategies:
        try:
            result = compile_program(
                source, params or None, strategy, options,
                dump_after=dump_after, dump_stream=sys.stderr,
            )
        except ReproError as exc:
            diagnostics.append(exc.diagnostic())
            if args.diagnostics_json:
                _emit_diagnostics(diagnostics, args.file, as_json=True)
            elif args.trace_json:
                print(exc.diagnostic().format(args.file), file=sys.stderr)
            else:
                _emit_diagnostics(diagnostics, args.file, as_json=False)
            return 1
        diagnostics.extend(d.diagnostic() for d in result.degradations)
        trace_records.append({
            "strategy": strategy.value,
            "call_sites": result.call_sites(),
            "passes": [t.to_dict() for t in result.pass_traces],
        })
        if machine_output:
            continue  # machine output only: suppress the human report
        for event in result.degradations:
            print(event.diagnostic().format(args.file), file=sys.stderr)
        print(f"== strategy {strategy.value}: {result.call_sites()} call "
              f"sites {result.call_sites_by_kind()}")
        if args.report:
            print(schedule_report(result))
        if args.listing:
            print(annotated_listing(result))
        if args.check:
            stats = check_schedule(result)
            print(f"   schedule verified: {stats.deliveries} deliveries, "
                  f"{stats.reads_checked} reads checked")
        print()
    if args.diagnostics_json:
        _emit_diagnostics(diagnostics, args.file, as_json=True)
    if args.trace_json:
        print(json.dumps(
            {"file": args.file, "strategies": trace_records}, indent=2
        ))
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    params = _parse_params(args.param)
    machine = MACHINES[args.machine]
    base = None
    for strategy in Strategy:
        result = compile_program(source, params or None, strategy)
        report = simulate(result, machine)
        if base is None:
            base = report.total_time
        print(
            f"  {strategy.value:6s}: total {report.total_time:9.4f}s "
            f"(norm {report.total_time / base:4.2f})  "
            f"comm {report.comm_time:9.4f}s  "
            f"{report.messages_per_proc} msgs/proc"
        )
    return 0


def cmd_table(_args: argparse.Namespace) -> int:
    from .evaluation.fig10_table import build_table, format_table

    print(format_table(build_table()))
    return 0


def cmd_charts(_args: argparse.Namespace) -> int:
    from .evaluation.fig10_charts import format_chart, run_all

    for chart in run_all():
        print(format_chart(chart))
        print()
    return 0


def cmd_profile(_args: argparse.Namespace) -> int:
    from .evaluation.fig5_profile import format_profile, run_all

    for profile in run_all():
        print(format_profile(profile))
        print()
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from .core.context import CompilerOptions
    from .evaluation.reproduce import main as reproduce_main

    options = None
    if getattr(args, "no_caches", False):
        options = CompilerOptions(enable_caches=False)
    return reproduce_main(options)


def cmd_batch(args: argparse.Namespace) -> int:
    import dataclasses

    from .perf.batch import BatchCompiler, BatchJob, RetryPolicy, benchmark_jobs

    options = CompilerOptions(enable_caches=not args.no_caches)
    if args.benchmarks:
        jobs = benchmark_jobs(
            strategies=[s.value for s in Strategy], options=options
        )
    elif args.files:
        params = _parse_params(args.param)
        jobs = [
            BatchJob(
                name=path,
                source=_read_source(path),
                params=params or None,
                strategy=args.strategy,
                options=options,
            )
            for path in args.files
        ]
    else:
        raise SystemExit("batch: give source files or --benchmarks")

    policy = RetryPolicy(
        timeout=args.timeout,
        max_retries=args.retries,
        quarantine_after=args.quarantine_after,
    )
    # --ndjson streams one JSON object per completed job as it lands
    # (fresh compiles at completion, cache hits at delivery), so long
    # batch runs are observable mid-flight; stdout stays pure NDJSON.
    on_result = None
    if args.ndjson:
        def on_result(res):  # noqa: ANN001 - BatchResult
            print(json.dumps(
                {"kind": "result", "ok": res.ok,
                 **dataclasses.asdict(res)},
                sort_keys=True,
            ), flush=True)
    compiler = BatchCompiler(
        workers=args.workers, policy=policy, checkpoint_path=args.checkpoint,
        cache_dir=args.cache_dir, on_result=on_result,
    )
    for round_no in range(args.repeat):
        results = compiler.run(jobs)
        if args.ndjson:
            continue
        if round_no == 0 or args.repeat > 1:
            print(f"-- round {round_no + 1}")
            for r in results:
                tag = "cache" if r.from_cache else f"{r.elapsed * 1000:5.1f}ms"
                if r.error:
                    print(f"  [FAIL] {r.name}: {r.error}")
                else:
                    print(
                        f"  [{tag}] {r.name}: {r.call_sites} call sites "
                        f"{r.call_sites_by_kind}"
                    )
    s = compiler.stats
    if args.ndjson:
        print(json.dumps({
            "kind": "summary",
            "jobs": s.jobs, "compiled": s.compiled,
            "cache_hits": s.cache_hits, "deduped": s.deduped,
            "errors": s.errors, "elapsed_s": round(s.elapsed, 4),
            "hit_rate": round(s.hit_rate, 4),
            "timeouts": s.timeouts, "retries": s.retries,
            "quarantined": s.quarantined, "resumed": s.resumed,
            "cache": compiler.cache.stats.as_dict(),
        }, sort_keys=True), flush=True)
        return 1 if s.errors else 0
    extras = ""
    if s.timeouts or s.retries or s.quarantined or s.resumed:
        extras = (
            f", {s.timeouts} timeouts, {s.retries} retries, "
            f"{s.quarantined} quarantined, {s.resumed} resumed"
        )
    print(
        f"== {s.jobs} jobs: {s.compiled} compiled, {s.cache_hits} cache hits, "
        f"{s.deduped} deduped, {s.errors} errors in {s.elapsed:.3f}s "
        f"(hit rate {s.hit_rate:.0%}){extras}"
    )
    if args.cache_dir:
        cs = compiler.cache.stats
        print(
            f"   cache tiers: {cs.memory_hits} memory, {cs.disk_hits} disk, "
            f"{cs.misses} misses, {cs.corrupt} corrupt"
        )
    return 1 if s.errors else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from .service.server import run_server

    return run_server(args)


def cmd_run(args: argparse.Namespace) -> int:
    """Compile one program and execute it on simulated ranks through a
    message-passing backend, optionally under chaos fault injection."""
    source = _read_source(args.file)
    params = _parse_params(args.param)
    strategy = Strategy.parse(args.strategy)
    diagnostics: list[Diagnostic] = []
    try:
        result = compile_program(source, params or None, strategy)
    except ReproError as exc:
        _emit_diagnostics(
            [exc.diagnostic()], args.file, args.diagnostics_json
        )
        return 1
    diagnostics.extend(d.diagnostic() for d in result.degradations)

    from .runtime.spmd import execute_spmd

    try:
        arrays, stats = execute_spmd(
            result,
            seed=args.seed,
            transport=args.transport,
            watchdog_s=args.watchdog,
            chaos=args.chaos_spec,
            max_rank_restarts=args.max_rank_restarts,
            integrity=False if args.no_integrity else None,
        )
    except ValueError as exc:  # bad --chaos-spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for event in stats.degradations:
        diagnostics.append(Diagnostic(
            code=event["code"],
            severity="warning",
            message=(
                f"{event['backend']} transport degraded "
                f"({event['reason']}): {event['detail']}; fallback: "
                f"{event['fallback']}"
            ),
            phase="runtime",
        ))
    if args.diagnostics_json:
        _emit_diagnostics(diagnostics, args.file, as_json=True)
        return 0
    for d in diagnostics:
        print(d.format(args.file), file=sys.stderr)
    print(f"== executed on {args.transport} "
          f"({len(arrays)} arrays/scalars assembled)")
    report = stats.as_dict()
    for key in (
        "messages", "bytes_moved", "reductions", "faults_injected",
        "faults_detected", "retransmits", "rank_restarts",
    ):
        print(f"   {key:16s} {report[key]}")
    if stats.degradations:
        print(f"   degradations     {len(stats.degradations)} "
              f"(codes {sorted({d['code'] for d in stats.degradations})})")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    if getattr(args, "autotune", False):
        from .perf.autotunebench import (
            CALIBRATED_BACKENDS,
            format_autotune_bench,
            write_autotune_bench,
        )

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_autotune.json"
        backends = (
            tuple(b.strip() for b in args.backends.split(",") if b.strip())
            if args.backends else CALIBRATED_BACKENDS
        )
        payload = write_autotune_bench(
            path=output, quick=args.quick, backends=backends
        )
        print(format_autotune_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if getattr(args, "exact", False):
        from .perf.exactbench import format_exact_bench, write_exact_bench

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_exact.json"
        payload = write_exact_bench(path=output, quick=args.quick)
        print(format_exact_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if getattr(args, "service", False):
        from .perf.servicebench import (
            format_service_bench,
            write_service_bench,
        )

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_service.json"
        payload = write_service_bench(path=output, quick=args.quick)
        print(format_service_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if getattr(args, "chaos", False):
        from .perf.chaosbench import format_chaos_bench, write_chaos_bench

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_chaos.json"
        payload = write_chaos_bench(path=output, quick=args.quick)
        print(format_chaos_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if args.kernels:
        from .perf.kernelbench import format_kernel_bench, write_kernel_bench

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_kernels.json"
        payload = write_kernel_bench(path=output, quick=args.quick)
        print(format_kernel_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if args.transport:
        from .perf.transportbench import (
            DEFAULT_BACKENDS,
            format_transport_bench,
            write_transport_bench,
        )

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_transport.json"
        backends = (
            tuple(b.strip() for b in args.backends.split(",") if b.strip())
            if args.backends else DEFAULT_BACKENDS
        )
        payload = write_transport_bench(
            path=output, quick=args.quick, backends=backends
        )
        print(format_transport_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    if args.spmd:
        from .perf.runbench import format_spmd_bench, write_spmd_bench

        output = args.output
        if output == "BENCH_compile.json":  # default belongs to compile mode
            output = "BENCH_spmd.json"
        payload = write_spmd_bench(path=output, quick=args.quick)
        print(format_spmd_bench(payload))
        print(f"\nwrote {output}")
        return 0 if payload["ok"] else 1

    from .perf.bench import format_bench, write_bench

    payload = write_bench(
        path=args.output,
        repeats=args.repeats,
        synthetic_phases=args.phases,
        self_check=args.self_check,
    )
    print(format_bench(payload))
    print(f"\nwrote {args.output}")
    if args.self_check and not payload["self_check"]["ok"]:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global communication analysis and optimization "
        "(PLDI 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a mini-HPF program")
    p.add_argument("file", nargs="?",
                   help="mini-HPF source file (optional with --list-passes)")
    p.add_argument("--strategy", default="comb",
                   help="orig | nored | comb (default comb)")
    p.add_argument("--all", action="store_true",
                   help="compile with all three strategies")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.add_argument("--report", action="store_true",
                   help="print the communication schedule")
    p.add_argument("--listing", action="store_true",
                   help="print the annotated scalarized program")
    p.add_argument("--check", action="store_true",
                   help="verify the schedule by concrete execution")
    p.add_argument("--strict", action="store_true",
                   help="disable fault boundaries: a failing optimization "
                        "pass aborts instead of degrading to Latest")
    p.add_argument("--max-errors", type=int, default=10, metavar="N",
                   help="stop after N syntax errors (default 10)")
    p.add_argument("--diagnostics-json", action="store_true",
                   help="emit diagnostics (errors and degradation "
                        "warnings) as JSON on stdout")
    p.add_argument("--trace-json", action="store_true",
                   help="emit the per-pass trace (wall time, degradation, "
                        "stats) as JSON on stdout")
    p.add_argument("--dump-after", action="append", default=[],
                   metavar="PASS",
                   help="dump entries/CommSet/schedule state to stderr "
                        "after PASS runs (repeatable)")
    p.add_argument("--disable-pass", action="append", default=[],
                   metavar="NAME",
                   help="skip the named optimization pass (repeatable; "
                        "structural passes cannot be disabled)")
    p.add_argument("--pipeline", default=None, metavar="A,B,C",
                   help="run a named pipeline (orig|nored|comb|exact) or "
                        "this comma-separated pass list instead of the "
                        "strategy's default pipeline")
    p.add_argument("--solver-budget-ms", type=int, default=None,
                   metavar="MS",
                   help="anytime budget for the exact placement search "
                        "(--pipeline exact); the solver always returns its "
                        "best incumbent, the greedy comb schedule at worst "
                        "(default 1000)")
    p.add_argument("--machine", choices=sorted(MACHINES), default=None,
                   help="machine model the combining threshold is derived "
                        "from (default SP2)")
    p.add_argument("--threshold-bytes", type=int, default=None, metavar="N",
                   help="override the machine-derived combining threshold "
                        "(ablations; default: derive from --machine)")
    p.add_argument("--list-passes", action="store_true",
                   help="list registered passes with their paper section "
                        "and enabled state, then exit")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("simulate", help="simulate all three versions")
    p.add_argument("file")
    p.add_argument("--machine", choices=sorted(MACHINES), default="SP2")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.set_defaults(func=cmd_simulate)

    sub.add_parser("table", help="Figure 10 message-count table").set_defaults(
        func=cmd_table
    )
    sub.add_parser("charts", help="Figure 10 normalized-time charts").set_defaults(
        func=cmd_charts
    )
    sub.add_parser("profile", help="Figure 5 bandwidth profiles").set_defaults(
        func=cmd_profile
    )
    p = sub.add_parser(
        "reproduce", help="run every paper check and print PASS/FAIL"
    )
    p.add_argument("--no-caches", action="store_true",
                   help="disable every memoized analysis cache (ablation)")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "batch", help="batch-compile many programs with result caching"
    )
    p.add_argument("files", nargs="*", help="mini-HPF source files")
    p.add_argument("--benchmarks", action="store_true",
                   help="compile the paper's benchmark programs instead")
    p.add_argument("--strategy", default="comb",
                   help="orig | nored | comb (default comb; files only)")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size (1 = serial, default)")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the batch N times (demonstrates result caching)")
    p.add_argument("--no-caches", action="store_true",
                   help="disable the per-compile analysis caches")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="per-job wall-clock timeout (forces pooled "
                        "execution; default none)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries per failing job after a timeout or "
                        "worker crash (default 2)")
    p.add_argument("--quarantine-after", type=int, default=3, metavar="N",
                   help="failed attempts before an input is quarantined "
                        "(default 3)")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="persist results to FILE as they land; a killed "
                        "run restarted with the same FILE resumes there")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed disk cache shared across runs "
                        "(and with the compile service)")
    p.add_argument("--ndjson", action="store_true",
                   help="stream one JSON object per completed job to "
                        "stdout (plus a final summary object) instead of "
                        "the human report")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "bench", help="perf-regression harness; writes BENCH_compile.json "
                      "(or BENCH_spmd.json with --spmd)"
    )
    p.add_argument("--output", default="BENCH_compile.json")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of-N timing repeats (default 3)")
    p.add_argument("--phases", type=int, default=48,
                   help="synthetic stencil size for the ablation (default 48)")
    p.add_argument("--self-check", action="store_true",
                   help="run the dynamic schedule checker on every "
                        "compiled output (degrades, never aborts)")
    p.add_argument("--spmd", action="store_true",
                   help="runtime benchmark instead: vectorized vs "
                        "element-wise SPMD execution; writes BENCH_spmd.json")
    p.add_argument("--transport", action="store_true",
                   help="message-passing benchmark instead: run every "
                        "program on each transport backend, calibrate the "
                        "machine model, verify bitwise identity; writes "
                        "BENCH_transport.json")
    p.add_argument("--backends", default=None, metavar="LIST",
                   help="with --transport/--autotune: comma-separated "
                        "backend subset "
                        "(default inline,threaded,multiprocess)")
    p.add_argument("--kernels", action="store_true",
                   help="kernel scaling benchmark instead: sweep the fused "
                        "per-rank kernel tier vs the vectorized baseline "
                        "over P in {4,16,64,256}; writes BENCH_kernels.json")
    p.add_argument("--chaos", action="store_true",
                   help="chaos benchmark instead: run every program on the "
                        "concurrent backends under a seeded fault matrix, "
                        "report survival rate, recovery latency, and "
                        "clean-run integrity overhead; writes "
                        "BENCH_chaos.json")
    p.add_argument("--service", action="store_true",
                   help="compile-service load benchmark instead: drive an "
                        "in-process asyncio server with concurrent HTTP "
                        "traffic, verify every response bitwise against a "
                        "direct compile, and report latency/cache/"
                        "coalescing numbers; writes BENCH_service.json")
    p.add_argument("--exact", action="store_true",
                   help="optimality-gap benchmark instead: run the anytime "
                        "exact placement solver against every golden "
                        "benchmark x strategy record, report greedy/optimal "
                        "gaps and proved-optimal flags; writes "
                        "BENCH_exact.json")
    p.add_argument("--autotune", action="store_true",
                   help="threshold autotuning benchmark instead: compile "
                        "every program under the SP2/NOW presets and "
                        "host-calibrated machine models, report which "
                        "schedules change with predicted/measured deltas "
                        "plus the per-program traffic lower bound; writes "
                        "BENCH_autotune.json")
    p.add_argument("--quick", action="store_true",
                   help="with --spmd/--transport/--kernels/--chaos/--exact/"
                        "--autotune: small problem sizes / budgets for CI "
                        "smoke runs")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "serve", help="asyncio compile server: POST mini-HPF sources to "
                      "/v1/compile (or JSON-RPC /rpc), get schedules, "
                      "diagnostics, and pass traces back"
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8377,
                   help="listen port (0 = ephemeral; default 8377)")
    p.add_argument("--workers", type=int, default=2,
                   help="compile process-pool size (0 = in-process "
                        "threads, for tests; default 2)")
    p.add_argument("--memory-budget", type=int,
                   default=64 * 1024 * 1024, metavar="BYTES",
                   help="in-memory schedule-cache budget (default 64 MiB)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="content-addressed disk cache tier, shared with "
                        "'repro batch --cache-dir'")
    p.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="per-compile wall-clock timeout (default 120)")
    p.add_argument("--retries", type=int, default=2, metavar="N",
                   help="retries after a timeout or worker crash (default 2)")
    p.add_argument("--quarantine-after", type=int, default=3, metavar="N",
                   help="failed attempts before a program key is "
                        "quarantined (default 3)")
    p.add_argument("--quota-rate", type=float, default=None, metavar="R",
                   help="per-tenant token-bucket refill rate in "
                        "requests/second (default: unlimited)")
    p.add_argument("--quota-burst", type=float, default=8.0, metavar="B",
                   help="per-tenant burst size (default 8)")
    p.add_argument("--max-pending", type=int, default=1024,
                   help="distinct in-flight compilations before "
                        "backpressure 429s (default 1024)")
    p.add_argument("--access-log", default=None, metavar="FILE",
                   help="NDJSON access log: one JSON object per response "
                        "('-' = stdout, 'none' = disabled; default none)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "run", help="compile and execute on simulated ranks through a "
                    "message-passing backend, optionally under chaos "
                    "fault injection"
    )
    p.add_argument("file")
    p.add_argument("--strategy", default="comb",
                   help="placement strategy (default comb)")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.add_argument("--transport", default="threaded",
                   choices=("inline", "threaded", "multiprocess"),
                   help="message-passing backend (default threaded)")
    p.add_argument("--chaos-spec", default=None, metavar="SPEC",
                   help="arm deterministic fault injection: comma-separated "
                        "KEY=VALUE pairs, e.g. "
                        "'seed=7,drop=0.05,corrupt=0.02,crash=1.0,"
                        "crash_budget=1'")
    p.add_argument("--max-rank-restarts", type=int, default=None,
                   metavar="N",
                   help="rank restarts before degrading to the inline "
                        "backend (default 2)")
    p.add_argument("--no-integrity", action="store_true",
                   help="disable wire checksums on clean runs (chaos "
                        "forces them back on)")
    p.add_argument("--watchdog", type=float, default=30.0, metavar="SECONDS",
                   help="deadlock watchdog timeout (default 30)")
    p.add_argument("--seed", type=int, default=12345,
                   help="initial-data seed (default 12345)")
    p.add_argument("--diagnostics-json", action="store_true",
                   help="emit compile and runtime diagnostics (including "
                        "W07xx degradation events) as JSON on stdout")
    p.set_defaults(func=cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except _CliExit as exc:
        return exc.code
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        # Safety net for paths opened outside _read_source.
        print(f"error: {exc.filename or exc}: no such file", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
