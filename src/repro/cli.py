"""Command-line interface.

Usage (after ``pip install -e .`` / ``python setup.py develop``)::

    python -m repro compile program.hpf --strategy comb --report --listing
    python -m repro compile program.hpf --all --check
    python -m repro simulate program.hpf --machine SP2 --param n=512
    python -m repro table          # regenerate the Figure 10 count table
    python -m repro charts         # regenerate the Figure 10 time charts
    python -m repro profile        # regenerate the Figure 5 curves
"""

from __future__ import annotations

import argparse
import sys

from .codegen.report import annotated_listing, schedule_report
from .core.pipeline import Strategy, compile_all_strategies, compile_program
from .errors import ReproError
from .machine.model import MACHINES
from .runtime.checker import check_schedule
from .runtime.simulator import simulate


def _parse_params(items: list[str]) -> dict[str, int]:
    params: dict[str, int] = {}
    for item in items:
        name, _, value = item.partition("=")
        if not value:
            raise SystemExit(f"bad --param {item!r}: expected NAME=INT")
        params[name.strip()] = int(value)
    return params


def cmd_compile(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    params = _parse_params(args.param)
    strategies = list(Strategy) if args.all else [Strategy.parse(args.strategy)]
    for strategy in strategies:
        result = compile_program(source, params or None, strategy)
        print(f"== strategy {strategy.value}: {result.call_sites()} call "
              f"sites {result.call_sites_by_kind()}")
        if args.report:
            print(schedule_report(result))
        if args.listing:
            print(annotated_listing(result))
        if args.check:
            stats = check_schedule(result)
            print(f"   schedule verified: {stats.deliveries} deliveries, "
                  f"{stats.reads_checked} reads checked")
        print()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    source = open(args.file).read()
    params = _parse_params(args.param)
    machine = MACHINES[args.machine]
    base = None
    for strategy in Strategy:
        result = compile_program(source, params or None, strategy)
        report = simulate(result, machine)
        if base is None:
            base = report.total_time
        print(
            f"  {strategy.value:6s}: total {report.total_time:9.4f}s "
            f"(norm {report.total_time / base:4.2f})  "
            f"comm {report.comm_time:9.4f}s  "
            f"{report.messages_per_proc} msgs/proc"
        )
    return 0


def cmd_table(_args: argparse.Namespace) -> int:
    from .evaluation.fig10_table import build_table, format_table

    print(format_table(build_table()))
    return 0


def cmd_charts(_args: argparse.Namespace) -> int:
    from .evaluation.fig10_charts import format_chart, run_all

    for chart in run_all():
        print(format_chart(chart))
        print()
    return 0


def cmd_profile(_args: argparse.Namespace) -> int:
    from .evaluation.fig5_profile import format_profile, run_all

    for profile in run_all():
        print(format_profile(profile))
        print()
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    from .core.context import CompilerOptions
    from .evaluation.reproduce import main as reproduce_main

    options = None
    if getattr(args, "no_caches", False):
        options = CompilerOptions(enable_caches=False)
    return reproduce_main(options)


def cmd_batch(args: argparse.Namespace) -> int:
    from .core.context import CompilerOptions
    from .perf.batch import BatchCompiler, BatchJob, benchmark_jobs

    options = CompilerOptions(enable_caches=not args.no_caches)
    if args.benchmarks:
        jobs = benchmark_jobs(
            strategies=[s.value for s in Strategy], options=options
        )
    elif args.files:
        params = _parse_params(args.param)
        jobs = [
            BatchJob(
                name=path,
                source=open(path).read(),
                params=params or None,
                strategy=args.strategy,
                options=options,
            )
            for path in args.files
        ]
    else:
        raise SystemExit("batch: give source files or --benchmarks")

    compiler = BatchCompiler(workers=args.workers)
    for round_no in range(args.repeat):
        results = compiler.run(jobs)
        if round_no == 0 or args.repeat > 1:
            print(f"-- round {round_no + 1}")
            for r in results:
                tag = "cache" if r.from_cache else f"{r.elapsed * 1000:5.1f}ms"
                if r.error:
                    print(f"  [FAIL] {r.name}: {r.error}")
                else:
                    print(
                        f"  [{tag}] {r.name}: {r.call_sites} call sites "
                        f"{r.call_sites_by_kind}"
                    )
    s = compiler.stats
    print(
        f"== {s.jobs} jobs: {s.compiled} compiled, {s.cache_hits} cache hits, "
        f"{s.deduped} deduped, {s.errors} errors in {s.elapsed:.3f}s "
        f"(hit rate {s.hit_rate:.0%})"
    )
    return 1 if s.errors else 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .perf.bench import format_bench, write_bench

    payload = write_bench(
        path=args.output,
        repeats=args.repeats,
        synthetic_phases=args.phases,
    )
    print(format_bench(payload))
    print(f"\nwrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Global communication analysis and optimization "
        "(PLDI 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile a mini-HPF program")
    p.add_argument("file")
    p.add_argument("--strategy", default="comb",
                   help="orig | nored | comb (default comb)")
    p.add_argument("--all", action="store_true",
                   help="compile with all three strategies")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.add_argument("--report", action="store_true",
                   help="print the communication schedule")
    p.add_argument("--listing", action="store_true",
                   help="print the annotated scalarized program")
    p.add_argument("--check", action="store_true",
                   help="verify the schedule by concrete execution")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("simulate", help="simulate all three versions")
    p.add_argument("file")
    p.add_argument("--machine", choices=sorted(MACHINES), default="SP2")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.set_defaults(func=cmd_simulate)

    sub.add_parser("table", help="Figure 10 message-count table").set_defaults(
        func=cmd_table
    )
    sub.add_parser("charts", help="Figure 10 normalized-time charts").set_defaults(
        func=cmd_charts
    )
    sub.add_parser("profile", help="Figure 5 bandwidth profiles").set_defaults(
        func=cmd_profile
    )
    p = sub.add_parser(
        "reproduce", help="run every paper check and print PASS/FAIL"
    )
    p.add_argument("--no-caches", action="store_true",
                   help="disable every memoized analysis cache (ablation)")
    p.set_defaults(func=cmd_reproduce)

    p = sub.add_parser(
        "batch", help="batch-compile many programs with result caching"
    )
    p.add_argument("files", nargs="*", help="mini-HPF source files")
    p.add_argument("--benchmarks", action="store_true",
                   help="compile the paper's benchmark programs instead")
    p.add_argument("--strategy", default="comb",
                   help="orig | nored | comb (default comb; files only)")
    p.add_argument("--param", action="append", default=[], metavar="NAME=INT")
    p.add_argument("--workers", type=int, default=1,
                   help="process-pool size (1 = serial, default)")
    p.add_argument("--repeat", type=int, default=1,
                   help="run the batch N times (demonstrates result caching)")
    p.add_argument("--no-caches", action="store_true",
                   help="disable the per-compile analysis caches")
    p.set_defaults(func=cmd_batch)

    p = sub.add_parser(
        "bench", help="perf-regression harness; writes BENCH_compile.json"
    )
    p.add_argument("--output", default="BENCH_compile.json")
    p.add_argument("--repeats", type=int, default=3,
                   help="best-of-N timing repeats (default 3)")
    p.add_argument("--phases", type=int, default=48,
                   help="synthetic stencil size for the ablation (default 48)")
    p.set_defaults(func=cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
