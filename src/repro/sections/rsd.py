"""Regular Section Descriptors (RSDs).

An RSD describes a rectangular, possibly strided region of an array: one
arithmetic progression ``lo : hi : step`` per dimension.  This is the data
half of the paper's Available Section Descriptor (§4.6); subsumption,
intersection, and (approximate) union over RSDs drive redundancy
elimination and message combining.

All indices are 1-based and inclusive, matching the Fortran surface
language.  Bounds are concrete integers: the compiler resolves symbolic
parameters before building sections.

Intersections are computed *exactly* per dimension (two arithmetic
progressions intersect in an arithmetic progression with step
``lcm(s1, s2)``), so the dependence tests built on top are precise for
strided sections like the odd/even column writes of the paper's Figure 4.
Union is closed only approximately — :meth:`RSD.hull` returns the smallest
single descriptor containing both, along with an exactness flag, mirroring
the paper's "approximated by a single section descriptor" rule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True, slots=True)
class DimSection:
    """One dimension of a section: the progression lo, lo+step, ... <= hi.

    A descriptor with ``lo > hi`` is empty.  ``step`` is always >= 1; the
    constructor normalizes ``hi`` down to the last actual element so equal
    element sets compare equal.  The hash is computed once at construction
    (descriptors are compared and set-probed heavily by the redundancy and
    combining passes).
    """

    lo: int
    hi: int
    step: int = 1
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        if self.step < 1:
            raise ValueError(f"section step must be >= 1, got {self.step}")
        if self.lo > self.hi:
            # Canonical empty form.
            object.__setattr__(self, "lo", 1)
            object.__setattr__(self, "hi", 0)
            object.__setattr__(self, "step", 1)
        else:
            last = self.lo + ((self.hi - self.lo) // self.step) * self.step
            object.__setattr__(self, "hi", last)
            if last == self.lo:
                object.__setattr__(self, "step", 1)
        object.__setattr__(self, "_hash", hash((self.lo, self.hi, self.step)))

    def __hash__(self) -> int:
        return self._hash

    # -- basics -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    def count(self) -> int:
        if self.is_empty:
            return 0
        return (self.hi - self.lo) // self.step + 1

    def elements(self) -> Iterator[int]:
        return iter(range(self.lo, self.hi + 1, self.step))

    def contains_point(self, x: int) -> bool:
        return (
            not self.is_empty
            and self.lo <= x <= self.hi
            and (x - self.lo) % self.step == 0
        )

    # -- set algebra ----------------------------------------------------------

    def contains(self, other: "DimSection") -> bool:
        """True when every element of ``other`` is an element of ``self``."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        if not (self.lo <= other.lo and other.hi <= self.hi):
            return False
        if (other.lo - self.lo) % self.step != 0:
            return False
        if other.count() == 1:
            return True
        return other.step % self.step == 0

    def intersect(self, other: "DimSection") -> "DimSection":
        """Exact intersection: an arithmetic progression (possibly empty)."""
        if self.is_empty or other.is_empty:
            return EMPTY_DIM
        g = math.gcd(self.step, other.step)
        if (other.lo - self.lo) % g != 0:
            return EMPTY_DIM
        step = self.step * other.step // g
        # Solve lo1 + a*s1 == lo2 (mod s2) for the smallest combined element
        # >= max(lo1, lo2) via the extended Euclid inverse.
        s1, s2 = self.step, other.step
        diff = other.lo - self.lo
        # a ≡ (diff/g) * inv(s1/g) (mod s2/g)
        m = s2 // g
        if m == 1:
            a0 = 0
        else:
            a0 = (diff // g) * pow(s1 // g, -1, m) % m
        first = self.lo + a0 * s1
        lo = max(self.lo, other.lo)
        if first < lo:
            first += -(-((lo - first)) // step) * step
        hi = min(self.hi, other.hi)
        if first > hi:
            return EMPTY_DIM
        return DimSection(first, hi, step)

    def overlaps(self, other: "DimSection") -> bool:
        return not self.intersect(other).is_empty

    def hull(self, other: "DimSection") -> tuple["DimSection", bool]:
        """Smallest single progression containing both; the flag reports
        whether the hull is exact (contains no extra elements)."""
        if self.is_empty:
            return other, True
        if other.is_empty:
            return self, True
        lo = min(self.lo, other.lo)
        hi = max(self.hi, other.hi)
        step = math.gcd(
            math.gcd(self.step, other.step), abs(other.lo - self.lo)
        )
        if step == 0:
            step = max(self.step, other.step)
        hull = DimSection(lo, hi, step)
        exact = hull.count() == self.union_count(other)
        return hull, exact

    def union_count(self, other: "DimSection") -> int:
        """|self ∪ other| computed by inclusion-exclusion (exact)."""
        return self.count() + other.count() - self.intersect(other).count()

    def shifted(self, delta: int) -> "DimSection":
        if self.is_empty:
            return self
        return DimSection(self.lo + delta, self.hi + delta, self.step)

    def clipped(self, lo: int, hi: int) -> "DimSection":
        """Restrict to the window [lo, hi] (same stride, exact)."""
        return self.intersect(DimSection(lo, hi, 1))

    def __str__(self) -> str:
        if self.is_empty:
            return "∅"
        if self.step == 1:
            return f"{self.lo}:{self.hi}"
        return f"{self.lo}:{self.hi}:{self.step}"


EMPTY_DIM = DimSection(1, 0)


@dataclass(frozen=True, slots=True)
class RSD:
    """A multi-dimensional regular section: the Cartesian product of one
    :class:`DimSection` per dimension."""

    dims: tuple[DimSection, ...]
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash(self.dims))

    def __hash__(self) -> int:
        return self._hash

    @staticmethod
    def of(*dims: DimSection | tuple[int, int] | tuple[int, int, int]) -> "RSD":
        """Convenience constructor from tuples: ``RSD.of((1, 8), (2, 10, 2))``."""
        out = []
        for d in dims:
            if isinstance(d, DimSection):
                out.append(d)
            else:
                out.append(DimSection(*d))
        return RSD(tuple(out))

    @staticmethod
    def whole(shape: tuple[int, ...]) -> "RSD":
        return RSD(tuple(DimSection(1, extent) for extent in shape))

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def is_empty(self) -> bool:
        return any(d.is_empty for d in self.dims)

    def count(self) -> int:
        if self.is_empty:
            return 0
        return math.prod(d.count() for d in self.dims)

    def contains(self, other: "RSD") -> bool:
        """Subsumption test: other ⊆ self (the paper's ``D1 ⊆ D2``)."""
        if other.is_empty:
            return True
        if self.is_empty or self.rank != other.rank:
            return False
        return all(a.contains(b) for a, b in zip(self.dims, other.dims))

    def intersect(self, other: "RSD") -> "RSD":
        if self.rank != other.rank:
            raise ValueError("rank mismatch in RSD intersection")
        return RSD(tuple(a.intersect(b) for a, b in zip(self.dims, other.dims)))

    def overlaps(self, other: "RSD") -> bool:
        return not self.intersect(other).is_empty

    def hull(self, other: "RSD") -> tuple["RSD", bool]:
        """Per-dimension hull; exact only when every dimension is exact and
        at most one dimension actually differs (otherwise the box fills in
        corner elements neither operand had)."""
        if self.rank != other.rank:
            raise ValueError("rank mismatch in RSD hull")
        if self.is_empty:
            return other, True
        if other.is_empty:
            return self, True
        dims = []
        all_exact = True
        differing = 0
        for a, b in zip(self.dims, other.dims):
            h, exact = a.hull(b)
            dims.append(h)
            all_exact = all_exact and exact
            if a != b:
                differing += 1
        hull = RSD(tuple(dims))
        if differing == 0:
            return hull, True
        if differing == 1 and all_exact:
            return hull, True
        # Conservative: the hull may contain extra elements; report exactness
        # by an (exact) cardinality check when cheap.
        exact = hull.count() == self.union_count(other)
        return hull, exact

    def union_count(self, other: "RSD") -> int:
        return self.count() + other.count() - self.intersect(other).count()

    def bytes(self, elem_bytes: int = 8) -> int:
        return self.count() * elem_bytes

    def __str__(self) -> str:
        return "[" + ", ".join(str(d) for d in self.dims) + "]"
