"""Symbolic array sections: RSDs whose bounds are affine in live loop
variables.

A communication entry's data section depends on *where* the communication
is placed: hoisting it out of a loop widens the section over that loop's
range (message vectorization).  Loops still enclosing the placement point
stay as free symbols in the bounds — e.g. the section read by
``a(i-1, j)`` placed inside the ``i`` loop but outside the ``j`` loop is
``[i-1 : i-1, 1 : n]`` with ``i`` live.

Subsumption between symbolic sections is decided conservatively: dimension
bounds must differ by *constants* for a verdict, anything else answers
"not contained" (safe: the compiler keeps the communication).  Dimensions
built by widening more than one variable are flagged inexact and are never
allowed to act as the subsuming side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..affine import Affine, NonAffineError
from .rsd import RSD, DimSection


@dataclass(frozen=True, slots=True)
class SymDim:
    """One dimension of a symbolic section: lo, lo+step, ..., hi.

    ``exact`` is False when the progression is a conservative superset of
    the real footprint (multi-variable widening).
    """

    lo: Affine
    hi: Affine
    step: int = 1
    exact: bool = True
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.lo, self.hi, self.step, self.exact))
        )

    def __hash__(self) -> int:
        return self._hash

    @staticmethod
    def point(form: Affine) -> "SymDim":
        return SymDim(form, form, 1, True)

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    def span_const(self) -> int | None:
        """hi - lo when constant, else None."""
        diff = self.hi - self.lo
        return diff.const if diff.is_constant else None

    def count_const(self) -> int | None:
        span = self.span_const()
        if span is None:
            return None
        if span < 0:
            return 0
        return span // self.step + 1

    def contains(self, other: "SymDim") -> bool:
        """Conservative containment: every element of ``other`` in ``self``
        for all values of the live symbols."""
        if not self.exact:
            return False  # a superset approximation must not subsume
        lo_gap = other.lo - self.lo
        hi_gap = self.hi - other.hi
        if not (lo_gap.is_constant and hi_gap.is_constant):
            return False
        if lo_gap.const < 0 or hi_gap.const < 0:
            return False
        if lo_gap.const % self.step != 0:
            return False
        if other.is_point:
            return True
        return other.step % self.step == 0

    def hull(self, other: "SymDim") -> "SymDim | None":
        """Single-progression hull, or None when the bounds are not
        comparable (non-constant differences)."""
        lo_gap = other.lo - self.lo
        hi_gap = other.hi - self.hi
        if not (lo_gap.is_constant and hi_gap.is_constant):
            return None
        lo = self.lo if lo_gap.const >= 0 else other.lo
        hi = other.hi if hi_gap.const >= 0 else self.hi
        step = math.gcd(self.step, other.step, abs(lo_gap.const))
        if step == 0:
            step = max(self.step, other.step)
        exact = self.exact and other.exact and (
            step in (self.step, other.step) or step == 1
        )
        return SymDim(lo, hi, step, exact)

    def widen(self, var: str, lo_bound: Affine, step: int, trips: int,
              exact_trips: bool) -> "SymDim":
        """Widen over ``var`` ranging over lo_bound, lo_bound+step, ...,
        lo_bound + step*trips.

        ``exact_trips`` is False when ``trips`` is only an upper bound
        (triangular loops); the result is then flagged inexact.
        """
        c_lo = self.lo.coeff(var)
        c_hi = self.hi.coeff(var)
        if c_lo == 0 and c_hi == 0:
            return self
        hi_bound = lo_bound + step * trips
        new_lo = self.lo.substitute(var, lo_bound if c_lo >= 0 else hi_bound)
        new_hi = self.hi.substitute(var, hi_bound if c_hi >= 0 else lo_bound)
        if self.is_point and c_lo == c_hi:
            # Single variable over a progression: exact strided result.
            new_step = abs(c_lo) * step
            return SymDim(new_lo, new_hi, max(1, new_step), self.exact and exact_trips)
        # Already widened once (or asymmetric): conservative box.
        new_step = math.gcd(self.step, abs(c_lo) * step, abs(c_hi) * step)
        return SymDim(new_lo, new_hi, max(1, new_step), False)

    def concretize(self, env: dict[str, int], extent: int) -> DimSection:
        lo = self.lo.evaluate(env)
        hi = self.hi.evaluate(env)
        section = DimSection(max(lo, 1), min(hi, extent), self.step)
        return section

    def max_count(self, ranges: dict[str, tuple[int, int]]) -> int:
        """Upper bound on the element count given live-symbol ranges.

        When the span ``hi - lo`` is constant the count is exact for every
        instance (e.g. ``[i-1 : i-1]`` is one element whatever ``i`` is);
        only truly varying spans fall back to interval bounds.
        """
        span = self.span_const()
        if span is not None:
            return 0 if span < 0 else span // self.step + 1
        try:
            lo_min, _ = self.lo.interval(ranges)
            _, hi_max = self.hi.interval(ranges)
        except NonAffineError:
            return 1  # unknowable symbol; treat as a point, callers add slack
        if hi_max < lo_min:
            return 0
        return (hi_max - lo_min) // self.step + 1

    def __str__(self) -> str:
        mark = "" if self.exact else "~"
        if self.is_point:
            return f"{mark}{self.lo}"
        if self.step == 1:
            return f"{mark}{self.lo}:{self.hi}"
        return f"{mark}{self.lo}:{self.hi}:{self.step}"


@dataclass(frozen=True, slots=True)
class SymSection:
    """A symbolic multi-dimensional section of a named array."""

    array: str
    dims: tuple[SymDim, ...]
    _hash: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.array, self.dims)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def exact(self) -> bool:
        return all(d.exact for d in self.dims)

    def contains(self, other: "SymSection") -> bool:
        """Conservative subsumption; requires the same array (ASD-level
        checks handle cross-array questions)."""
        if self.array != other.array or self.rank != other.rank:
            return False
        return all(a.contains(b) for a, b in zip(self.dims, other.dims))

    def same_shape(self, other: "SymSection") -> bool:
        """Do both sections have identical per-dimension *spans* (offsets
        may differ)?  Used when combining sections of different arrays.

        Unit dimensions (span 0) are ignored, so a plane of a 3-d array is
        shape-compatible with a whole 2-d array — the paper's gravity code
        combines NNC on ``g(i,:,:)`` with NNC on the 2-d ``glast``.
        """

        def profile(section: "SymSection") -> list[tuple[int, int]] | None:
            dims = []
            for d in section.dims:
                span = d.span_const()
                if span is None:
                    return None
                if span == 0:
                    continue
                dims.append((span, d.step))
            return dims

        pa, pb = profile(self), profile(other)
        return pa is not None and pa == pb

    def hull(self, other: "SymSection") -> "SymSection | None":
        if self.rank != other.rank:
            return None
        dims = []
        for a, b in zip(self.dims, other.dims):
            h = a.hull(b)
            if h is None:
                return None
            dims.append(h)
        return SymSection(self.array, tuple(dims))

    def concretize(self, env: dict[str, int], shape: tuple[int, ...]) -> RSD:
        return RSD(
            tuple(
                d.concretize(env, extent) for d, extent in zip(self.dims, shape)
            )
        )

    def max_count(self, ranges: dict[str, tuple[int, int]]) -> int:
        return math.prod(d.max_count(ranges) for d in self.dims)

    def __str__(self) -> str:
        return f"{self.array}[" + ", ".join(str(d) for d in self.dims) + "]"
