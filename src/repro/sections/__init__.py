"""Array-section algebra: exact RSDs and symbolic (loop-parametric)
sections."""

from .rsd import EMPTY_DIM, RSD, DimSection
from .symbolic import SymDim, SymSection

__all__ = ["DimSection", "EMPTY_DIM", "RSD", "SymDim", "SymSection"]
