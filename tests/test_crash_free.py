"""The crash-free frontier: no input — however malformed — may escape the
library as a bare ``KeyError``/``AttributeError``/``IndexError``.

Every failure must surface as a :class:`ReproError` subclass.  Three layers
enforce this: structured errors in the frontend (lexer/parser/semantic
analysis), per-pass fault boundaries in placement, and the
``InternalCompilerError`` wrapper around :func:`compile_program`.  The
tests here fuzz each layer with hand-picked malformed programs plus
hypothesis-generated mutations of a valid program.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_program
from repro.errors import ReproError
from repro.frontend.analysis import elaborate
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse, parse_recovering

VALID = """PROGRAM base
PARAM n = 8
PROCESSORS p(2)
REAL a(n)
REAL b(n)
DISTRIBUTE a(BLOCK) ONTO p
DISTRIBUTE b(BLOCK) ONTO p
DO t = 1, 2
b(2:n-1) = a(1:n-2)
a(2:n-1) = b(2:n-1)
END DO
END PROGRAM
"""

# Hand-picked malformed inputs: one per failure class we have seen or can
# imagine.  Each must raise a ReproError (or compile cleanly) — never a
# bare builtin exception.
MALFORMED = [
    "",
    "\n\n\n",
    "PROGRAM",
    "PROGRAM x",
    "PROGRAM x\nEND",
    "END PROGRAM",
    "PROGRAM x\nREAL\nEND",
    "PROGRAM x\nREAL a(\nEND",
    "PROGRAM x\nREAL a(0)\nEND",
    "PROGRAM x\nREAL a(-4)\na(1) = 0\nEND",
    "PROGRAM x\nREAL a(n)\nEND",  # undefined param
    "PROGRAM x\nPARAM n\nEND",
    "PROGRAM x\nPARAM n = \nEND",
    "PROGRAM x\nq = 1\nEND",
    "PROGRAM x\nREAL a(4)\na() = 1\nEND",
    "PROGRAM x\nREAL a(4)\na(1, 2) = 1\nEND",
    "PROGRAM x\nREAL a(4)\na(5:1) = 1\nEND",
    "PROGRAM x\nREAL a(4)\na(1:4:0) = 1\nEND",
    "PROGRAM x\nREAL a(4)\na(1:4) = b(1:4)\nEND",
    "PROGRAM x\nREAL a(8)\nREAL b(8)\na(1:4) = b(1:7)\nEND",
    "PROGRAM x\nPROCESSORS p\nEND",
    "PROGRAM x\nPROCESSORS p(0)\nEND",
    "PROGRAM x\nDISTRIBUTE a(BLOCK) ONTO p\nEND",
    "PROGRAM x\nPROCESSORS p(2)\nREAL a(4)\nDISTRIBUTE a(WEIRD) ONTO p\nEND",
    "PROGRAM x\nREAL a(4)\nALIGN a WITH q\nEND",
    "PROGRAM x\nDO t = 1, 2\nEND",  # unclosed loop
    "PROGRAM x\nDO t\nEND DO\nEND",
    "PROGRAM x\nEND DO\nEND",
    "PROGRAM x\nIF\nEND",
    "PROGRAM x\nREAL a(4)\na(1) = = 2\nEND",
    "PROGRAM x\nREAL a(4)\na(1) = 1 +\nEND",
    "PROGRAM x\nREAL a(4)\na(1) = (1\nEND",
    "PROGRAM x\nREAL a(4)\na(1) = 1 @ 2\nEND",
    "\x00\x01\x02",
    "PROGRAM x\nREAL a(4)\na(1) = 1\n" * 3,  # duplicate PROGRAM headers
]


def _must_be_structured(fn):
    """Run fn(); allow success or any ReproError, reject bare crashes."""
    try:
        fn()
    except ReproError:
        pass
    # Any other exception type propagates and fails the test.


class TestMalformedInputs:
    @pytest.mark.parametrize("source", MALFORMED)
    def test_tokenize_structured(self, source):
        _must_be_structured(lambda: tokenize(source))

    @pytest.mark.parametrize("source", MALFORMED)
    def test_parse_structured(self, source):
        _must_be_structured(lambda: parse(source))

    @pytest.mark.parametrize("source", MALFORMED)
    def test_parse_recovering_structured(self, source):
        """Error recovery must degrade to a diagnostic list, not crash."""
        program, errors = parse_recovering(source)
        for err in errors:
            assert isinstance(err, ReproError)
        assert program is not None or errors

    @pytest.mark.parametrize("source", MALFORMED)
    def test_compile_structured(self, source):
        _must_be_structured(lambda: compile_program(source))

    @pytest.mark.parametrize("source", MALFORMED)
    def test_elaborate_structured(self, source):
        def run():
            elaborate(parse(source))

        _must_be_structured(run)


@st.composite
def mutated_program(draw):
    """A valid program damaged by deletion, duplication, truncation, or
    character substitution — the classic fuzz moves."""
    lines = VALID.splitlines()
    move = draw(st.sampled_from(["delete", "dup", "truncate", "subst", "swap"]))
    if move == "delete":
        idx = draw(st.integers(0, len(lines) - 1))
        del lines[idx]
    elif move == "dup":
        idx = draw(st.integers(0, len(lines) - 1))
        lines.insert(idx, lines[idx])
    elif move == "truncate":
        keep = draw(st.integers(0, len(lines) - 1))
        lines = lines[:keep]
    elif move == "swap":
        i = draw(st.integers(0, len(lines) - 2))
        lines[i], lines[i + 1] = lines[i + 1], lines[i]
    else:
        text = "\n".join(lines)
        pos = draw(st.integers(0, len(text) - 1))
        ch = draw(st.sampled_from("()=+*:,1@#$%~` "))
        return text[:pos] + ch + text[pos + 1 :]
    return "\n".join(lines)


class TestFuzzedPrograms:
    @settings(max_examples=150, deadline=None)
    @given(source=mutated_program())
    def test_compile_never_crashes_bare(self, source):
        _must_be_structured(lambda: compile_program(source))

    @settings(max_examples=80, deadline=None)
    @given(source=mutated_program())
    def test_recovery_never_crashes_bare(self, source):
        program, errors = parse_recovering(source)
        for err in errors:
            assert isinstance(err, ReproError)

    @settings(max_examples=60, deadline=None)
    @given(
        source=st.text(
            alphabet=st.sampled_from(
                list("PROGRAMENDOIFREALparam=()+*:,\n 123abn")
            ),
            max_size=200,
        )
    )
    def test_random_text_never_crashes_bare(self, source):
        _must_be_structured(lambda: compile_program(source))
