"""The unified cost layer: machine-derived thresholds and HBL floors.

Covers the two halves of ``repro.cost``: the :class:`CostModel` knee
derivation (the machine-adaptive replacement for the paper's literal
20 KB) and the :mod:`repro.cost.lower_bound` traffic floor, checked
against hand-computed footprints and against actual SPMD executions.
"""

from __future__ import annotations

import pytest

from repro.core.context import CompilerOptions
from repro.core.pipeline import Strategy, compile_program
from repro.cost.lower_bound import lower_bound, reduction_tree_messages
from repro.cost.model import (
    DEFAULT_KNEE_FRACTION,
    CostModel,
    PlacementCostModel,
    discrete_knee,
    resolve_machine,
)
from repro.machine.model import MACHINES, NOW, SP2, MachineModel
from repro.runtime.spmd import execute_spmd

PAPER_THRESHOLD = 20480


class TestDerivedThreshold:
    def test_sp2_knee_matches_the_papers_hand_read_constant(self):
        """The satellite check: the analytic SP2 knee must land within
        +-25% of the 20 KB the paper read off Figure 5 by hand."""
        derived = CostModel(machine=SP2).derived_threshold()
        assert abs(derived - PAPER_THRESHOLD) <= 0.25 * PAPER_THRESHOLD

    def test_now_derives_a_different_knee(self):
        sp2 = CostModel(machine=SP2).derived_threshold()
        now = CostModel(machine=NOW).derived_threshold()
        assert now != sp2
        # The NOW's per-message overhead is several times the SP2's, so
        # its knee must be strictly larger, not just different.
        assert now > sp2

    def test_closed_form(self):
        m = SP2
        f = DEFAULT_KNEE_FRACTION
        expected = round(
            f / (1 - f) * m.bandwidth_bps * (m.startup_s + m.sw_overhead_s)
        )
        assert CostModel(machine=m).derived_threshold() == expected

    def test_knee_caps_at_the_cache_size(self):
        pig = MachineModel(
            name="pig", startup_s=1.0, inject_s=0.5, bandwidth_bps=1e9,
            bcopy_cache_bps=1e8, bcopy_mem_bps=1e7,
            cache_bytes=4096, flops=1e8, sw_overhead_s=1.0,
        )
        assert CostModel(machine=pig).derived_threshold() == 4096

    def test_invalid_fraction_rejected(self):
        for f in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                CostModel(machine=SP2, knee_fraction=f).derived_threshold()

    def test_override_wins(self):
        model = CostModel(machine=SP2, override_threshold_bytes=12345)
        assert model.threshold_bytes() == 12345
        assert model.derived_threshold() != 12345

    def test_placement_model_is_the_pinned_ilp_cost(self):
        assert CostModel(machine=NOW).placement_model() == PlacementCostModel()


class TestResolveMachine:
    def test_preset_names(self):
        for name, model in MACHINES.items():
            assert resolve_machine(name) is model

    def test_instances_pass_through(self):
        assert resolve_machine(NOW) is NOW

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown machine"):
            resolve_machine("CM5")


class TestDiscreteKnee:
    def test_smallest_size_reaching_fraction_of_peak(self):
        curve = [(16, 1.0), (64, 5.0), (256, 8.5), (1024, 10.0)]
        assert discrete_knee(curve, 0.8) == 256
        assert discrete_knee(curve, 0.99) == 1024

    def test_empty_curve_raises(self):
        with pytest.raises(ValueError):
            discrete_knee([])

    def test_fig5_profile_delegates(self):
        from repro.evaluation.fig5_profile import profile_machine

        profile = profile_machine(SP2)
        assert profile.knee() == discrete_knee(
            [(p.nbytes, p.receive_bw) for p in profile.points]
        )


class TestContextWiring:
    def test_default_context_derives_from_sp2(self):
        opts = CompilerOptions()
        assert opts.combine_threshold_bytes is None
        result = compile_program(_SHIFT_SOURCE)
        assert result.ctx.cost_model.threshold_bytes() == (
            CostModel(machine=SP2).derived_threshold()
        )

    def test_override_flows_through_options(self):
        result = compile_program(
            _SHIFT_SOURCE,
            options=CompilerOptions(combine_threshold_bytes=777),
        )
        assert result.ctx.cost_model.threshold_bytes() == 777

    def test_machine_name_flows_through_options(self):
        result = compile_program(
            _SHIFT_SOURCE, options=CompilerOptions(machine="NOW")
        )
        assert result.ctx.cost_model.machine is NOW
        assert result.ctx.cost_model.threshold_bytes() == (
            CostModel(machine=NOW).derived_threshold()
        )

    def test_machine_instance_flows_through_options(self):
        result = compile_program(
            _SHIFT_SOURCE, options=CompilerOptions(machine=NOW)
        )
        assert result.ctx.cost_model.machine is NOW

    def test_historical_ilp_import_path(self):
        from repro.core.ilp import CostModel as IlpCostModel

        assert IlpCostModel is PlacementCostModel


N = 12  # 3 ranks x 4 owned elements each

_DECLS = """REAL u(12)
REAL v(12)
DISTRIBUTE u(BLOCK) ONTO p
DISTRIBUTE v(BLOCK) ONTO p"""


def _program(body: str) -> str:
    return (
        f"PROGRAM lbtest\nPARAM n = {N}\nPROCESSORS p(3)\n"
        f"{_DECLS}\nREAL s\n{body}\nEND PROGRAM"
    )


_SHIFT_SOURCE = _program(f"u(2:{N - 1}) = v(1:{N - 2})")


class TestLowerBound:
    def test_shift_halo_counted_exactly(self):
        # u(i) = v(i-1) for i in 2..11 over 3 ranks of 4 elements: only
        # i=5 (rank 1 reads v(4), owned by rank 0) and i=9 (rank 2 reads
        # v(8), owned by rank 1) cross an owner boundary.
        result = compile_program(_SHIFT_SOURCE)
        lb = lower_bound(result.info)
        assert lb.wire_floor_bytes == 2 * 8
        assert lb.per_array["v"].needed_elements == 2
        assert lb.unanalyzed_statements == 0
        assert lb.reduction_floor_bytes == 0

    def test_replicated_statement_charges_every_non_owner(self):
        # s = u(5): element 5 is owned by rank 1; the other two ranks
        # evaluate the replicated assignment too and must receive it.
        result = compile_program(_program("s = u(5)"))
        lb = lower_bound(result.info)
        assert lb.wire_floor_bytes == 2 * 8

    def test_reduction_inputs_stay_off_the_wire_floor(self):
        result = compile_program(_program(f"s = SUM(u(1:{N}))"))
        lb = lower_bound(result.info)
        assert lb.wire_floor_bytes == 0
        assert lb.ratio(0) is None
        # ... but the combine tree gets its informational floor.
        assert lb.reduction_floor_bytes == (3 - 1) * 8

    def test_guarded_reads_are_skipped(self):
        body = f"IF s > 0 THEN\nu(2:{N - 1}) = v(1:{N - 2})\nEND IF"
        result = compile_program(_program(body))
        lb = lower_bound(result.info)
        assert lb.wire_floor_bytes == 0

    def test_time_loop_does_not_inflate_the_floor(self):
        # The footprint of a repeated body is the same set of elements;
        # the floor must equal the single-trip floor, not scale with
        # trip count.
        looped = _program(
            f"DO tstep = 1, 4\nu(2:{N - 1}) = v(1:{N - 2})\nEND DO"
        )
        result = compile_program(looped)
        assert lower_bound(result.info).wire_floor_bytes == 2 * 8

    def test_floor_is_strategy_invariant_and_sound(self):
        floors = set()
        for strategy in Strategy:
            result = compile_program(_SHIFT_SOURCE, strategy=strategy)
            lb = lower_bound(result.info)
            floors.add(lb.wire_floor_bytes)
            _, stats = execute_spmd(result)
            assert lb.sound_for(stats.bytes_moved)
            assert lb.ratio(stats.bytes_moved) >= 1.0
        assert len(floors) == 1

    def test_benchmarks_respect_the_floor(self):
        # QUICK_PARAMS sizes: the default shallow params diverge to
        # non-finite values, which the staleness oracle rejects.
        from repro.evaluation.programs import BENCHMARKS
        from repro.perf.runbench import QUICK_PARAMS

        for name in sorted(BENCHMARKS):
            for strategy in Strategy:
                result = compile_program(
                    BENCHMARKS[name], params=QUICK_PARAMS[name],
                    strategy=strategy,
                )
                lb = lower_bound(result.info)
                assert lb.unanalyzed_statements == 0, name
                _, stats = execute_spmd(result)
                assert lb.sound_for(stats.bytes_moved), (name, strategy)

    def test_reduction_tree_messages(self):
        assert reduction_tree_messages(1) == 0
        assert reduction_tree_messages(2) == 2
        assert reduction_tree_messages(4) == 4
        assert reduction_tree_messages(5) == 6


class TestSimulatorReporting:
    def test_lower_bound_flows_into_the_summary(self):
        from repro.runtime.simulator import simulate

        result = compile_program(_SHIFT_SOURCE)
        lb = lower_bound(result.info)
        report = simulate(
            result, MACHINES["SP2"], lower_bound_bytes=lb.wire_floor_bytes
        )
        assert report.lower_bound_bytes == lb.wire_floor_bytes
        assert report.summary()["lower_bound_megabytes"] == (
            lb.wire_floor_bytes / 1e6
        )
        # Without a floor the summary stays backward-compatible.
        assert "lower_bound_megabytes" not in simulate(
            result, MACHINES["SP2"]
        ).summary()
