"""Vectorized-runtime equivalence suite.

The vectorized SPMD executor (plan-compiled nests + communication plans)
must be an invisible optimization: for every Figure 10 program under
every placement strategy, its final arrays are bitwise-identical to the
element-wise executor's and to the sequential reference interpreter, and
its movement counters (messages, bytes, remote reads, reductions) match
the element-wise path exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Strategy, compile_program
from repro.errors import SimulationError
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.interp import interpret
from repro.runtime.plans import analyze_nest, plan_nests
from repro.runtime.spmd import SPMDExecutor, execute_spmd

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


def _compile(program: str, strategy: Strategy):
    return compile_program(
        BENCHMARKS[program], params=SMALL[program], strategy=strategy
    )


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_vectorized_matches_elementwise_and_reference(
        self, program, strategy
    ):
        result = _compile(program, strategy)
        vec_state, vec_stats = execute_spmd(result, vectorize=True)
        elem_state, elem_stats = execute_spmd(result, vectorize=False)
        ref = interpret(result.info)
        assert set(vec_state) == set(elem_state)
        for name in ref:
            np.testing.assert_array_equal(
                vec_state[name], elem_state[name],
                err_msg=f"{program}/{strategy.value}: {name} vec vs elem",
            )
            np.testing.assert_array_equal(
                vec_state[name], ref[name],
                err_msg=f"{program}/{strategy.value}: {name} vec vs reference",
            )

    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_movement_counters_match(self, program, strategy):
        result = _compile(program, strategy)
        _, vec = execute_spmd(result, vectorize=True)
        _, elem = execute_spmd(result, vectorize=False)
        assert vec.messages == elem.messages
        assert vec.bytes_moved == elem.bytes_moved
        assert vec.remote_reads == elem.remote_reads
        assert vec.reductions == elem.reductions

    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    def test_vectorized_interpreter_matches(self, program):
        result = _compile(program, Strategy.GLOBAL)
        ref = interpret(result.info)
        vec = interpret(result.info, vectorize=True)
        for name in ref:
            np.testing.assert_array_equal(
                vec[name], ref[name], err_msg=f"{program}: {name}"
            )


class TestVectorizerCoverage:
    def test_benchmarks_vectorize(self):
        """Every scalarized benchmark has planned nests, and the executor
        actually fires them (block path, not just plan existence)."""
        for program in sorted(BENCHMARKS):
            result = _compile(program, Strategy.GLOBAL)
            executor = SPMDExecutor(result, vectorize=True)
            assert executor.nest_plans, f"{program}: nothing vectorized"
            stats = executor.run()
            assert stats.vectorized_firings > 0, program

    def test_comm_plans_are_cached(self):
        """Time-stepped programs re-fire the same operations; the plan
        cache must serve repeat firings."""
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, vectorize=True)
        stats = executor.run()
        assert stats.plan_cache_hits > 0
        assert stats.plan_compiles > 0

    def test_fallback_reasons_are_recorded(self):
        """gravity's scalarized reductions keep the element-wise path and
        must show up as explained fallbacks, not silent slow paths."""
        result = _compile("gravity", Strategy.GLOBAL)
        executor = SPMDExecutor(result, vectorize=True)
        assert executor.fallback_reasons
        assert all(isinstance(r, str) and r for r in
                   executor.fallback_reasons.values())
        stats = executor.run()
        assert stats.fallback_firings > 0

    def test_non_rectangular_nest_rejected(self):
        """A subscript coupling two loop variables must not vectorize."""
        source = """
PROGRAM tri
PARAM n = 8
PROCESSORS p(2)
REAL a(n, n)
REAL b(n, n)
DISTRIBUTE a(BLOCK, *) ONTO p
DISTRIBUTE b(BLOCK, *) ONTO p
DO i = 1, n
  DO j = 1, n
    a(i, j) = b(j, i) + 1.0
  END DO
END DO
END
"""
        result = compile_program(source)
        info = result.info
        plans, _ = plan_nests(info, info.program.body)
        for plan in plans.values():
            # transposed read is fine (each subscript carries one var);
            # make sure the analysis really ran on the nest
            assert plan.vars
        # now an actually-coupled subscript
        coupled = source.replace("b(j, i)", "b(i, i)")
        result2 = compile_program(coupled)
        info2 = result2.info
        do = next(
            s for s in info2.program.body
            if s.__class__.__name__ == "Do"
        )
        outcome = analyze_nest(info2, do)
        assert isinstance(outcome, str)
        assert "two dimensions" in outcome


class TestFailureDetectionPreserved:
    """The vectorized path must keep the executor's oracle power: a
    miscompiled schedule still raises, never silently diverges."""

    def test_dropped_schedule_detected(self):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, vectorize=True)
        executor.schedule.anchors.clear()
        with pytest.raises(SimulationError, match="not present"):
            executor.run()

    def test_partial_drop_detected(self):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, vectorize=True)
        anchors = executor.schedule.anchors
        # drop roughly half the anchors
        for anchor in sorted(anchors, key=repr)[::2]:
            del anchors[anchor]
        with pytest.raises(SimulationError):
            executor.run()
