"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import textwrap

import pytest

from repro.core.context import AnalysisContext, CompilerOptions
from repro.core.pipeline import analyze_entries
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize


def compile_to_context(
    source: str,
    params: dict[str, int] | None = None,
    options: CompilerOptions | None = None,
    do_scalarize: bool = True,
):
    """Parse → elaborate → (scalarize) → AnalysisContext, for tests that
    inspect intermediate structures."""
    program = parse(textwrap.dedent(source))
    info = elaborate(program, params)
    if do_scalarize:
        program = scalarize(program, info)
        info = elaborate(program, params)
    return AnalysisContext(info, options)


def analyzed(source: str, params: dict[str, int] | None = None):
    """Context plus fully analyzed entries (latest/earliest/candidates)."""
    ctx = compile_to_context(source, params)
    return ctx, analyze_entries(ctx)


@pytest.fixture
def fig4_source() -> str:
    """The paper's Figure 4 running example, in mini-HPF."""
    return """
    PROGRAM fig4
      PARAM n = 16
      PROCESSORS pr(4)
      REAL a(n, n)
      REAL b(n, n)
      REAL c(n, n)
      REAL d(n, n)
      DISTRIBUTE a(BLOCK, *) ONTO pr
      DISTRIBUTE b(BLOCK, *) ONTO pr
      DISTRIBUTE c(BLOCK, *) ONTO pr
      DISTRIBUTE d(BLOCK, *) ONTO pr
      REAL cond
      b(:, 1:n:2) = 1
      b(:, 2:n:2) = 2
      IF cond > 0 THEN
        a(:, :) = 3
      ELSE
        a(:, :) = d(:, :)
      END IF
      DO i = 2, n
        DO j = 1, n, 2
          c(i, j) = a(i-1, j) + b(i-1, j)
        END DO
        DO j = 1, n
          c(i, j) = c(i, j) + a(i-1, j) * b(i-1, j)
        END DO
      END DO
    END PROGRAM
    """


@pytest.fixture
def stencil_source() -> str:
    """A small 1-d stencil with a time loop: the bread-and-butter case."""
    return """
    PROGRAM stencil
      PARAM n = 16
      PARAM steps = 4
      PROCESSORS pr(4)
      REAL a(n)
      REAL b(n)
      DISTRIBUTE a(BLOCK) ONTO pr
      DISTRIBUTE b(BLOCK) ONTO pr
      DO t = 1, steps
        b(2:n-1) = a(1:n-2) + a(3:n)
        a(2:n-1) = b(2:n-1)
      END DO
    END PROGRAM
    """
