"""The Figure 10 message-count table must reproduce exactly."""

from __future__ import annotations

import pytest

from repro.core.pipeline import compile_all_strategies
from repro.evaluation.fig10_table import ROUTINE_MAP, build_table
from repro.evaluation.programs import BENCHMARKS, PAPER_TABLE


class TestFigure10Table:
    @pytest.fixture(scope="class")
    def table(self):
        return {(r.benchmark, r.routine, r.comm_type): r for r in build_table()}

    @pytest.mark.parametrize("key", sorted(PAPER_TABLE))
    def test_row_matches_paper(self, table, key):
        row = table[key]
        assert row.measured == row.paper, (
            f"{key}: measured {row.measured}, paper {row.paper}"
        )

    def test_every_paper_row_covered(self, table):
        assert set(table) == set(PAPER_TABLE)

    def test_counts_stable_across_problem_sizes(self):
        """Static call sites are a compile-time property: they must not
        change with the problem size while halo messages stay inside the
        combining threshold (the paper ran hydflo only at small n for
        exactly this kind of reason)."""
        sweeps = {"shallow": 512, "trimesh_gauss": 512, "hydflo_hydro": 48}
        for program, big_n in sweeps.items():
            src = BENCHMARKS[program]
            baseline = {
                s: r.call_sites()
                for s, r in compile_all_strategies(src).items()
            }
            bigger = {
                s: r.call_sites()
                for s, r in compile_all_strategies(src, params={"n": big_n}).items()
            }
            assert baseline == bigger, program

    def test_threshold_disables_combining_for_huge_halos(self):
        """Past the 20 KB threshold the compiler must stop combining —
        the anti-goal the paper's Figure 5 study motivates."""
        results = compile_all_strategies(
            BENCHMARKS["hydflo_hydro"], params={"n": 128}
        )
        from repro.core.pipeline import Strategy

        sites = {s: r.call_sites() for s, r in results.items()}
        assert sites[Strategy.GLOBAL] == sites[Strategy.ORIG]

    def test_routine_map_covers_paper_table(self):
        assert set(ROUTINE_MAP) == set(PAPER_TABLE)

    def test_factor_of_nine_headline(self, table):
        row = table[("hydflo", "flux", "NNC")]
        assert row.orig / row.comb > 8.5  # "as much as a factor of nine"
