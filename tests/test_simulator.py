"""Bulk-synchronous cost simulator tests."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Strategy, compile_all_strategies, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.machine.model import NOW, SP2
from repro.runtime.simulator import Simulator, simulate


SMALL = {"n": 32, "pr": 2, "pc": 2}


class TestTripCounting:
    def test_loop_trip(self, stencil_source):
        result = compile_program(stencil_source, params={"n": 16, "steps": 4})
        sim = Simulator(result, SP2)
        time_loop = result.ctx.cfg.loops[0]
        assert sim.loop_trip(time_loop) == 4

    def test_executions_multiply_over_nest(self, stencil_source):
        result = compile_program(stencil_source, params={"n": 16, "steps": 4})
        sim = Simulator(result, SP2)
        # innermost body node of the scalarized nest inside the time loop
        inner = result.ctx.cfg.loops[-1]
        body = inner.header.succs[0]
        assert sim.executions_of(body) == 4 * sim.loop_trip(inner)

    def test_hoisted_comm_executes_less(self, stencil_source):
        result = compile_program(stencil_source, strategy="comb")
        report = simulate(result, SP2)
        for op_cost in report.comm_ops:
            # everything placed inside the 4-iteration time loop only
            assert op_cost.executions == 4


class TestCostShape:
    def test_messages_counted(self, stencil_source):
        result = compile_program(stencil_source, strategy="orig")
        report = simulate(result, SP2)
        # 2 shifts x 4 time steps (the b-read is local)
        assert report.messages_per_proc == 8

    def test_total_is_compute_plus_comm(self, stencil_source):
        report = simulate(compile_program(stencil_source), SP2)
        assert report.total_time == pytest.approx(
            report.compute_time + report.comm_time
        )

    def test_comm_breakdown_nonnegative(self):
        result = compile_program(BENCHMARKS["shallow"], params=SMALL)
        report = simulate(result, SP2)
        for c in report.comm_ops:
            assert c.startup_time >= 0
            assert c.wire_time >= 0
            assert c.packing_time >= 0

    def test_summary_keys(self, stencil_source):
        report = simulate(compile_program(stencil_source), SP2)
        assert set(report.summary()) == {
            "compute_s", "comm_s", "total_s", "messages", "megabytes",
        }

    def test_combining_reduces_startup(self):
        results = compile_all_strategies(BENCHMARKS["shallow"], params=SMALL)
        orig = simulate(results[Strategy.ORIG], SP2)
        comb = simulate(results[Strategy.GLOBAL], SP2)
        assert comb.startup_time < orig.startup_time
        assert comb.messages_per_proc < orig.messages_per_proc

    def test_compute_time_strategy_independent(self):
        results = compile_all_strategies(BENCHMARKS["shallow"], params=SMALL)
        times = {s: simulate(r, SP2).compute_time for s, r in results.items()}
        assert len(set(times.values())) == 1

    def test_now_slower_than_sp2(self):
        result = compile_program(BENCHMARKS["shallow"], params=SMALL)
        assert simulate(result, NOW).total_time > simulate(result, SP2).total_time


class TestOverlapAndPressure:
    """§6 extensions: CPU-network overlap and buffer/cache pressure."""

    def _compiled(self, placement="latest"):
        from repro.core.context import CompilerOptions

        return compile_program(
            BENCHMARKS["shallow"],
            params={"n": 512, "pr": 5, "pc": 5},
            strategy="comb",
            options=CompilerOptions(group_placement=placement),
        )

    def test_defaults_match_paper_setup(self):
        """Both knobs default off: 'measurements were made with overlap
        disabled'."""
        result = self._compiled()
        assert simulate(result, SP2).total_time == pytest.approx(
            simulate(result, SP2, overlap=False, cache_pressure=False).total_time
        )

    def test_overlap_never_increases_time(self):
        for placement in ("latest", "earliest"):
            result = self._compiled(placement)
            plain = simulate(result, SP2)
            overlapped = simulate(result, SP2, overlap=True)
            assert overlapped.total_time <= plain.total_time + 1e-12

    def test_pressure_never_decreases_time(self):
        for placement in ("latest", "earliest"):
            result = self._compiled(placement)
            plain = simulate(result, SP2)
            pressured = simulate(result, SP2, cache_pressure=True)
            assert pressured.total_time >= plain.total_time - 1e-12

    def test_push_late_minimizes_residency(self):
        """Groups placed at the latest common point sit right before
        their uses: nothing to overlap, nothing to pressure."""
        late = self._compiled("latest")
        early = self._compiled("earliest")
        late_hidden = sum(
            c.hidden_time for c in simulate(late, SP2, overlap=True).comm_ops
        )
        early_hidden = sum(
            c.hidden_time for c in simulate(early, SP2, overlap=True).comm_ops
        )
        assert early_hidden >= late_hidden

    def test_startup_never_hidden(self):
        result = self._compiled("earliest")
        report = simulate(result, SP2, overlap=True)
        for c in report.comm_ops:
            assert c.total_time >= c.startup_time - 1e-12

    def test_group_placement_preserves_counts(self):
        assert (
            self._compiled("latest").call_sites()
            == self._compiled("earliest").call_sites()
        )


class TestPaperShapes:
    """Figure 10's qualitative claims, at chart sizes."""

    def test_comm_cut_by_at_least_half_shallow_sp2(self):
        params = {"n": 512, "pr": 5, "pc": 5}
        results = compile_all_strategies(BENCHMARKS["shallow"], params=params)
        orig = simulate(results[Strategy.ORIG], SP2)
        comb = simulate(results[Strategy.GLOBAL], SP2)
        assert orig.comm_time / comb.comm_time >= 2.0

    def test_overall_gain_in_paper_band_shallow(self):
        params = {"n": 384, "pr": 5, "pc": 5}
        results = compile_all_strategies(BENCHMARKS["shallow"], params=params)
        orig = simulate(results[Strategy.ORIG], SP2)
        comb = simulate(results[Strategy.GLOBAL], SP2)
        gain = 1 - comb.total_time / orig.total_time
        assert 0.05 <= gain <= 0.45  # the paper reports 10-40%

    def test_monotone_across_strategies(self):
        for program, params in (
            ("shallow", {"n": 256, "pr": 5, "pc": 5}),
            ("gravity", {"n": 64, "pr": 5, "pc": 5}),
            ("hydflo_flux", {"n": 32, "pr": 5, "pc": 5}),
        ):
            results = compile_all_strategies(BENCHMARKS[program], params=params)
            t = {s: simulate(r, SP2).total_time for s, r in results.items()}
            assert t[Strategy.GLOBAL] <= t[Strategy.EARLIEST] * 1.001
            assert t[Strategy.EARLIEST] <= t[Strategy.ORIG] * 1.001

    def test_gain_shrinks_with_problem_size(self):
        """Compute grows faster than halo communication: the relative win
        must decay with n (the paper's bars flatten to the right)."""
        gains = []
        for n in (256, 512, 1024):
            params = {"n": n, "pr": 5, "pc": 5}
            results = compile_all_strategies(BENCHMARKS["shallow"], params=params)
            orig = simulate(results[Strategy.ORIG], SP2)
            comb = simulate(results[Strategy.GLOBAL], SP2)
            gains.append(1 - comb.total_time / orig.total_time)
        assert gains[0] > gains[1] > gains[2]

    def test_dynamic_message_reduction_factor(self):
        params = {"n": 256, "pr": 5, "pc": 5}
        results = compile_all_strategies(BENCHMARKS["shallow"], params=params)
        orig = simulate(results[Strategy.ORIG], SP2)
        comb = simulate(results[Strategy.GLOBAL], SP2)
        assert orig.messages_per_proc / comb.messages_per_proc >= 2.0
