"""Compilation-pipeline tests: strategy dispatch, result structure, and
cross-strategy invariants."""

from __future__ import annotations

import pytest

from repro.core.pipeline import (
    Strategy,
    compile_all_strategies,
    compile_program,
)
from repro.frontend.parser import parse


class TestStrategyParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("orig", Strategy.ORIG),
            ("ORIG", Strategy.ORIG),
            ("latest", Strategy.ORIG),
            ("nored", Strategy.EARLIEST),
            ("earliest", Strategy.EARLIEST),
            ("comb", Strategy.GLOBAL),
            ("global", Strategy.GLOBAL),
            (Strategy.GLOBAL, Strategy.GLOBAL),
        ],
    )
    def test_aliases(self, name, expected):
        assert Strategy.parse(name) is expected

    def test_unknown_raises(self):
        with pytest.raises(ValueError):
            Strategy.parse("quantum")


class TestResultStructure:
    def test_accepts_source_or_ast(self, stencil_source):
        from_src = compile_program(stencil_source)
        from_ast = compile_program(parse(stencil_source))
        assert from_src.call_sites() == from_ast.call_sites()

    def test_param_override_threads_through(self, stencil_source):
        result = compile_program(stencil_source, params={"n": 64})
        assert result.info.params["n"] == 64
        assert result.info.shape("a") == (64,)

    def test_every_group_position_is_member_candidate(self, fig4_source):
        for strategy in Strategy:
            result = compile_program(fig4_source, strategy=strategy)
            for pc in result.placed:
                for e in pc.entries:
                    assert pc.position in e.candidate_set()

    def test_every_alive_entry_placed_exactly_once(self, fig4_source):
        for strategy in Strategy:
            result = compile_program(fig4_source, strategy=strategy)
            placed_ids = [
                e.id for pc in result.placed for e in pc.entries
            ]
            assert len(placed_ids) == len(set(placed_ids))
            alive = {e.id for e in result.entries if e.alive}
            assert set(placed_ids) == alive

    def test_eliminated_entries_have_live_winners(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        for e in result.eliminated_entries():
            winner = e.eliminated_by
            while winner.eliminated_by is not None:
                winner = winner.eliminated_by
            assert winner.alive

    def test_stats_populated(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        assert result.stats["entries"] == 4
        assert result.stats["redundant"] == 2
        assert result.stats["groups"] == result.call_sites()

    def test_no_comm_program(self):
        result = compile_program(
            """
            PROGRAM local
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              DISTRIBUTE a(BLOCK) ONTO p
              a(:) = 1
            END
            """
        )
        assert result.call_sites() == 0
        assert result.entries == []

    def test_replicated_program_no_comm(self):
        result = compile_program(
            """
            PROGRAM rep
              PARAM n = 16
              REAL a(n)
              REAL b(n)
              b(2:n) = a(1:n-1)
            END
            """
        )
        assert result.call_sites() == 0


class TestCrossStrategyInvariants:
    def test_global_never_worse_than_others(self, fig4_source, stencil_source):
        for source in (fig4_source, stencil_source):
            results = compile_all_strategies(source)
            sites = {s: r.call_sites() for s, r in results.items()}
            assert sites[Strategy.GLOBAL] <= sites[Strategy.ORIG]
            assert sites[Strategy.GLOBAL] <= sites[Strategy.EARLIEST]

    def test_same_entries_discovered_by_all_strategies(self, fig4_source):
        results = compile_all_strategies(fig4_source)
        labels = {
            s: sorted(e.label for e in r.entries) for s, r in results.items()
        }
        assert labels[Strategy.ORIG] == labels[Strategy.EARLIEST]
        assert labels[Strategy.ORIG] == labels[Strategy.GLOBAL]

    def test_orig_places_at_latest(self, fig4_source):
        result = compile_program(fig4_source, strategy="orig")
        for pc in result.placed:
            (e,) = pc.entries
            assert pc.position == e.latest_pos

    def test_earliest_places_at_earliest(self, fig4_source):
        result = compile_program(fig4_source, strategy="nored")
        for pc in result.placed:
            (e,) = pc.entries
            assert pc.position == e.earliest_pos


class TestGroupInvariants:
    """§4.7 output invariants on the real benchmarks: every emitted group
    is pairwise combinable at its final (push-late) position."""

    def test_benchmark_groups_are_coherent(self):
        from repro.comm.compatibility import message_volume
        from repro.core.greedy import _combinable_at
        from repro.evaluation.programs import BENCHMARKS

        for name, src in BENCHMARKS.items():
            result = compile_program(src, strategy=Strategy.GLOBAL)
            ctx = result.ctx
            for pc in result.placed:
                node = ctx.node_of(pc.position)
                ranges = ctx.sections.live_ranges_at(node)
                total = 0
                for i, a in enumerate(pc.entries):
                    total += message_volume(
                        ctx.info, a,
                        ctx.sections.section_at(a.use, node), ranges,
                    )
                    for b in pc.entries[i + 1:]:
                        assert _combinable_at(ctx, a, b, pc.position), (
                            name, a.label, b.label
                        )
                if len(pc.entries) > 1:
                    assert total <= ctx.cost_model.threshold_bytes(), name

    def test_absorbed_entries_covered_at_final_position(self):
        from repro.core.redundancy import subsumes_at
        from repro.evaluation.programs import BENCHMARKS

        for name, src in BENCHMARKS.items():
            result = compile_program(src, strategy=Strategy.GLOBAL)
            ctx = result.ctx
            for pc in result.placed:
                for entry in pc.entries:
                    for victim in entry.absorbed:
                        assert subsumes_at(ctx, entry, victim, pc.position), (
                            name, entry.label, victim.label
                        )
