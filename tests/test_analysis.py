"""Semantic analysis / elaboration tests."""

from __future__ import annotations

import pytest

from repro.distribution.layout import DistFormat
from repro.errors import SemanticError
from repro.frontend.analysis import elaborate, to_affine
from repro.frontend.parser import parse


def elab(source: str, params=None):
    return elaborate(parse(source), params)


BASE = """
PROGRAM t
  PARAM n = 8
  PROCESSORS p(2, 2)
  TEMPLATE tm(n, n)
  DISTRIBUTE tm(BLOCK, BLOCK) ONTO p
  REAL a(n, n) ALIGN WITH tm
  REAL b(n, n)
  DISTRIBUTE b(BLOCK, BLOCK) ONTO p
  REAL c(n, n)
  REAL s
END PROGRAM
"""


class TestElaboration:
    def test_params_resolved(self):
        info = elab(BASE)
        assert info.params == {"n": 8}

    def test_param_override(self):
        info = elab(BASE, {"n": 32})
        assert info.shape("a") == (32, 32)

    def test_override_unknown_param_raises(self):
        with pytest.raises(SemanticError):
            elab(BASE, {"zz": 1})

    def test_aligned_array_gets_template_layout(self):
        info = elab(BASE)
        a = info.layout("a")
        assert [d.format for d in a.dims] == [DistFormat.BLOCK, DistFormat.BLOCK]
        assert a.grid.name == "p"

    def test_directly_distributed_array(self):
        info = elab(BASE)
        assert info.is_distributed("b")

    def test_undistributed_array_replicated(self):
        info = elab(BASE)
        assert not info.is_distributed("c")
        assert info.layout("c").distributed_dims == ()

    def test_scalars_recorded(self):
        info = elab(BASE)
        assert "s" in info.scalars

    def test_same_mapping(self):
        info = elab(BASE)
        assert info.layout("a").same_mapping(info.layout("b"))
        assert not info.layout("a").same_mapping(info.layout("c"))

    def test_eval_const(self):
        info = elab(BASE)
        expr = parse("PROGRAM x\nPARAM n = 8\nREAL q(n + 2)\nEND").decls[1].dims[0]
        assert info.eval_const(expr) == 10


class TestSemanticErrors:
    def test_duplicate_param(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nPARAM n = 1\nPARAM n = 2\nEND")

    def test_duplicate_array(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL a(4)\nREAL a(4)\nEND")

    def test_distribute_unknown_grid(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL a(4)\nDISTRIBUTE a(BLOCK) ONTO nope\nEND")

    def test_distribute_rank_mismatch(self):
        with pytest.raises(SemanticError):
            elab(
                "PROGRAM t\nPROCESSORS p(2)\nREAL a(4, 4)\n"
                "DISTRIBUTE a(BLOCK) ONTO p\nEND"
            )

    def test_distribute_too_few_grid_axes(self):
        with pytest.raises(SemanticError):
            elab(
                "PROGRAM t\nPROCESSORS p(2)\nREAL a(4, 4)\n"
                "DISTRIBUTE a(BLOCK, BLOCK) ONTO p\nEND"
            )

    def test_distribute_unfilled_grid(self):
        with pytest.raises(SemanticError):
            elab(
                "PROGRAM t\nPROCESSORS p(2, 2)\nREAL a(4, 4)\n"
                "DISTRIBUTE a(BLOCK, *) ONTO p\nEND"
            )

    def test_distribute_undeclared_target(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nPROCESSORS p(2)\nDISTRIBUTE q(BLOCK) ONTO p\nEND")

    def test_align_unknown_target(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL a(4) ALIGN WITH ghost\nEND")

    def test_align_shape_mismatch(self):
        with pytest.raises(SemanticError):
            elab(
                "PROGRAM t\nPROCESSORS p(2)\nTEMPLATE tm(8)\n"
                "DISTRIBUTE tm(BLOCK) ONTO p\nREAL a(6) ALIGN WITH tm\nEND"
            )

    def test_align_and_distribute_conflict(self):
        with pytest.raises(SemanticError):
            elab(
                "PROGRAM t\nPROCESSORS p(2)\nTEMPLATE tm(8)\n"
                "DISTRIBUTE tm(BLOCK) ONTO p\nREAL a(8) ALIGN WITH tm\n"
                "DISTRIBUTE a(BLOCK) ONTO p\nEND"
            )

    def test_undeclared_variable_in_body(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL s\ns = zz\nEND")

    def test_undeclared_array_in_body(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL s\ns = zz(1)\nEND")

    def test_rank_mismatch_in_body(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL a(4, 4)\na(1) = 0\nEND")

    def test_array_used_without_subscripts(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL a(4)\nREAL s\ns = a\nEND")

    def test_loop_var_shadows_declaration(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nREAL i\nDO i = 1, 3\ni = 2\nEND DO\nEND")

    def test_assignment_to_undeclared_scalar(self):
        with pytest.raises(SemanticError):
            elab("PROGRAM t\nzz = 1\nEND")

    def test_loop_var_usable_in_subscripts(self):
        info = elab("PROGRAM t\nREAL a(4)\nDO i = 1, 4\na(i) = i\nEND DO\nEND")
        assert info.shape("a") == (4,)


class TestToAffine:
    def test_folds_params(self):
        prog = parse("PROGRAM t\nPARAM n = 8\nREAL a(n)\na(n - 1) = 0\nEND")
        sub = prog.body[0].lhs.subscripts[0]
        form = to_affine(sub.expr, {"n": 8})
        assert form.is_constant and form.const == 7

    def test_keeps_loop_vars_symbolic(self):
        prog = parse("PROGRAM t\nREAL a(8)\nDO i = 1, 8\na(i + 1) = 0\nEND DO\nEND")
        sub = prog.body[0].body[0].lhs.subscripts[0]
        form = to_affine(sub.expr, {})
        assert form.coeff("i") == 1 and form.const == 1

    def test_multiplication_by_constant(self):
        prog = parse("PROGRAM t\nREAL a(16)\nDO i = 1, 8\na(2 * i) = 0\nEND DO\nEND")
        sub = prog.body[0].body[0].lhs.subscripts[0]
        assert to_affine(sub.expr, {}).coeff("i") == 2

    def test_exact_constant_division(self):
        prog = parse("PROGRAM t\nPARAM n = 8\nREAL a(n)\na(n / 2) = 0\nEND")
        sub = prog.body[0].lhs.subscripts[0]
        assert to_affine(sub.expr, {"n": 8}).const == 4


class TestReplicatedControl:
    """Conditions and loop bounds execute redundantly on every processor
    and therefore must not read distributed data."""

    DIST = (
        "PROGRAM rc\nPARAM n = 8\nPROCESSORS p(2)\nREAL a(n)\n"
        "DISTRIBUTE a(BLOCK) ONTO p\nREAL s\n"
    )

    def test_condition_on_distributed_array_rejected(self):
        with pytest.raises(SemanticError, match="branch condition"):
            elab(self.DIST + "IF a(1) > 0 THEN\ns = 1\nEND IF\nEND")

    def test_loop_bound_on_distributed_array_rejected(self):
        with pytest.raises(SemanticError, match="loop bound"):
            elab(self.DIST + "DO i = 1, a(2)\ns = 1\nEND DO\nEND")

    def test_replicated_array_in_condition_allowed(self):
        src = (
            "PROGRAM rc\nPARAM n = 8\nREAL r(n)\nREAL s\n"
            "IF r(1) > 0 THEN\ns = 1\nEND IF\nEND"
        )
        elab(src)  # no error: r is replicated

    def test_scalar_condition_allowed(self):
        elab(self.DIST + "IF s > 0 THEN\ns = 1\nEND IF\nEND")
