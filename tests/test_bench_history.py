"""Bench-history records and machine-model calibration."""

from __future__ import annotations

import json

import pytest

from repro.machine.model import SP2, MachineModel, calibrated_model, fit_linear_cost
from repro.perf.history import (
    HISTORY_FILE,
    append_history,
    autotune_headline,
    chaos_headline,
    compile_headline,
    exact_headline,
    kernel_headline,
    service_headline,
    spmd_headline,
    transport_headline,
)


class TestHistory:
    def test_append_is_one_json_line_per_record(self, tmp_path):
        path = tmp_path / HISTORY_FILE
        append_history("compile", {"total_s": 1.0}, path=str(path))
        append_history("spmd", {"ok": True}, path=str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["kind"] == "compile" and first["total_s"] == 1.0
        assert second["kind"] == "spmd" and second["ok"] is True
        for record in (first, second):
            assert "timestamp" in record
            assert "commit" in record  # may be None outside git

    def test_directory_places_file_next_to_bench_output(self, tmp_path):
        append_history("transport", {"ok": True}, directory=str(tmp_path))
        assert (tmp_path / HISTORY_FILE).exists()

    def test_headline_extractors(self):
        compile_payload = {
            "programs": {
                "a": {
                    "total_s": 0.5,
                    "passes": [
                        {"pass": "subset", "wall_s": 0.01,
                         "stats": {"deactivated": 5}},
                        {"pass": "greedy", "wall_s": 0.02,
                         "stats": {"deactivated": 0}},
                    ],
                },
                "b": {
                    "total_s": 0.25,
                    "passes": [
                        {"pass": "subset", "wall_s": 0.03,
                         "stats": {"deactivated": 7}},
                    ],
                },
            },
            "ablation": {"speedup": 2.0},
        }
        h = compile_headline(compile_payload)
        assert h["programs"] == 2
        assert h["total_s"] == 0.75
        assert h["ablation_speedup"] == 2.0
        assert h["pass_wall_s"] == {"subset": 0.04, "greedy": 0.02}
        assert h["pass_deactivated"] == {"subset": 12, "greedy": 0}

        spmd_payload = {
            "mode": "quick", "strategy": "comb", "ok": True,
            "programs": {
                "a": {"vectorized": {"wall_s": 0.1}, "speedup": 3.0,
                      "params": {"n": 8, "pr": 2, "pc": 2}},
                "b": {"vectorized": {"wall_s": 0.2}, "speedup": 5.0,
                      "params": {"n": 8, "pr": 2, "pc": 2}},
            },
        }
        h = spmd_headline(spmd_payload)
        assert h["vec_wall_s"] == pytest.approx(0.3)
        assert h["median_speedup"] == 5.0
        assert h["P"] == 4 and h["grid"] == [2, 2]

        transport_payload = {
            "mode": "quick", "ok": True,
            "backends": {
                "inline": {"programs": {"a": {
                    "wall_s": 0.1, "params": {"pr": 2, "pc": 2},
                }}},
            },
            "calibration": {
                "inline": {"bandwidth_bps": 1e9, "startup_s": 1e-6},
            },
        }
        h = transport_headline(transport_payload)
        assert h["backends"] == ["inline"]
        assert h["wall_s"]["inline"] == pytest.approx(0.1)
        assert h["calibrated_bandwidth_bps"]["inline"] == 1e9
        assert h["P"] == 4 and h["grid"] == [2, 2]

    def test_chaos_headline(self):
        payload = {
            "mode": "quick", "ok": True,
            "backends": ["multiprocess", "threaded"],
            "runs": 84, "survived": 84, "survival_rate": 1.0,
            "recovery": {
                "rank_restarts": 24, "total_recovery_s": 0.07,
                "mean_recovery_s": 0.003,
            },
            "integrity_overhead": {
                "threaded": {"overhead_pct": 1.2, "ok": True},
                "multiprocess": {"overhead_pct": 3.4, "ok": True},
            },
        }
        h = chaos_headline(payload)
        assert h["ok"] is True
        assert h["runs"] == 84
        assert h["survival_rate"] == 1.0
        assert h["rank_restarts"] == 24
        assert h["mean_recovery_s"] == 0.003
        assert h["integrity_overhead_pct"] == {
            "threaded": 1.2, "multiprocess": 3.4,
        }

    def test_service_headline(self):
        payload = {
            "mode": "quick", "ok": True,
            "corpus": {"distinct": 72},
            "phases": {
                "cold": {"p50_ms": 699.7},
                "warm": {"p99_ms": 4.1, "throughput_rps": 4075.0},
                "storm": {"client_high_water": 160, "dropped": 0},
                "coalesce": {"coalesced": 31},
                "disk": {"disk_hits": 72},
            },
            "regression": {"ratio": 169.7},
            "correctness": {"verified": 568, "mismatches": 0},
            "stats": {"cache": {"hit_rate": 0.71}},
            "server_errors": 0,
        }
        h = service_headline(payload)
        assert h["ok"] is True
        assert h["distinct_programs"] == 72
        assert h["storm_high_water"] == 160
        assert h["storm_dropped"] == 0
        assert h["warm_p99_ms"] == 4.1
        assert h["speedup_ratio"] == 169.7
        assert h["coalesced"] == 31
        assert h["disk_hits"] == 72
        assert h["cache_hit_rate"] == 0.71
        assert h["mismatches"] == 0
        assert h["server_errors"] == 0
        json.dumps(h)  # one JSONL-able line

    def test_headlines_are_backfill_safe(self):
        # Payloads written before grid stamping carry no params: the
        # new P/grid fields must come out None, never raise.
        h = spmd_headline({
            "mode": "quick", "ok": True,
            "programs": {"a": {"vectorized": {"wall_s": 0.1},
                               "speedup": 2.0}},
        })
        assert h["P"] is None and h["grid"] is None
        h = transport_headline({
            "mode": "quick", "ok": True,
            "backends": {"inline": {"programs": {"a": {"wall_s": 0.1}}}},
            "calibration": {},
        })
        assert h["P"] is None and h["grid"] is None
        # Chaos payloads predating a counter degrade to None/{} fields.
        h = chaos_headline({"mode": "quick", "ok": False})
        assert h["survival_rate"] is None
        assert h["rank_restarts"] is None
        assert h["integrity_overhead_pct"] == {}
        # Service payloads predating a phase degrade to None fields.
        h = service_headline({"mode": "quick", "ok": False})
        assert h["storm_high_water"] is None
        assert h["warm_p99_ms"] is None
        assert h["speedup_ratio"] is None
        assert h["cache_hit_rate"] is None

    def test_exact_headline(self):
        payload = {
            "mode": "quick", "ok": True, "solver_budget_ms": 2000,
            "benchmarks": {
                "a": {"messages": 4, "proved": True, "solver_ms": 12},
                "b": {"messages": 8, "proved": False, "solver_ms": 2001},
            },
            "records": [
                {"benchmark": "a", "strategy": "orig", "gap": 3.0,
                 "oracle_ok": True, "exact_oracle_ok": True},
                {"benchmark": "a", "strategy": "comb", "gap": 1.0,
                 "oracle_ok": True, "exact_oracle_ok": True},
                {"benchmark": "b", "strategy": "comb", "gap": 1.0,
                 "oracle_ok": False, "exact_oracle_ok": True},
            ],
            "regressions": ["b/comb: greedy regressed"],
        }
        h = exact_headline(payload)
        assert h["ok"] is True
        assert h["benchmarks"] == 2 and h["records"] == 3
        assert h["proved"] == 1
        assert h["max_gap"] == 3.0
        assert h["mean_gap"] == pytest.approx(1.6667)
        assert h["solver_ms_total"] == pytest.approx(2013)
        assert h["oracle_rejections"] == 1
        assert h["regressions"] == 1
        json.dumps(h)  # one JSONL-able line

    def test_exact_headline_is_backfill_safe(self):
        # Payloads predating any counter degrade to None, never raise.
        h = exact_headline({"mode": "quick", "ok": False})
        assert h["benchmarks"] is None and h["records"] is None
        assert h["proved"] is None
        assert h["max_gap"] is None and h["mean_gap"] is None
        assert h["solver_ms_total"] is None
        assert h["oracle_rejections"] is None
        assert h["regressions"] == 0
        json.dumps(h)

    def test_autotune_headline(self):
        payload = {
            "mode": "full", "ok": True,
            "thresholds": {"SP2": 18360, "NOW": 67660},
            "programs": {
                "a": {"lower_bound": {"ratio": 1.27}},
                "b": {"lower_bound": {"ratio": 4.0}},
            },
            "ablation": {
                "changed_by_model": {"SP2": [], "NOW": ["a"]},
                "any_changed": True,
            },
            "golden_check": {"checked": True, "drifted": []},
            "lower_bound_violations": [],
        }
        h = autotune_headline(payload)
        assert h["programs"] == 2
        assert h["thresholds"] == {"SP2": 18360, "NOW": 67660}
        assert h["changed_schedules"] == {"SP2": 0, "NOW": 1}
        assert h["any_changed"] is True
        assert h["golden_drift"] == 0
        assert h["max_bytes_over_lb"] == 4.0
        assert h["lower_bound_violations"] == 0

    def test_autotune_headline_is_backfill_safe(self):
        h = autotune_headline({"mode": "quick", "ok": False})
        assert h["programs"] is None
        assert h["thresholds"] is None
        assert h["changed_schedules"] is None
        assert h["any_changed"] is None
        assert h["max_bytes_over_lb"] is None
        assert h["golden_drift"] == 0
        assert h["lower_bound_violations"] == 0

    def test_kernel_headline_one_record_per_grid(self):
        cell = {
            "kernel": {"execute_s": 0.2, "elements_per_s": 1000},
            "speedup": 2.5,
        }
        payload = {
            "mode": "quick", "ok": True, "kernel_tier": "python",
            "sweeps": {
                "4": {"grid": [2, 2], "weak": {"a": cell},
                      "strong": {"a": cell},
                      "regression": {"ratio": 0.4, "ok": True}},
                "16": {"grid": [4, 4], "weak": {"a": cell},
                       "strong": {"a": cell}, "regression": None},
            },
        }
        records = kernel_headline(payload)
        assert [r["P"] for r in records] == [4, 16]
        assert records[0]["grid"] == [2, 2]
        assert records[0]["median_speedup"] == 2.5
        assert records[0]["regression_ratio"] == 0.4
        assert records[0]["kernel_execute_s"] == pytest.approx(0.4)
        assert records[0]["weak_elements_per_s"] == 1000
        assert records[1]["regression_ratio"] is None


class TestCalibration:
    def test_fit_recovers_linear_model(self):
        startup, bandwidth = 50e-6, 100e6
        sizes = [64, 1024, 8192, 65536]
        times = [startup + n / bandwidth for n in sizes]
        fit_c, fit_b = fit_linear_cost(sizes, times)
        assert fit_c == pytest.approx(startup, rel=1e-6)
        assert fit_b == pytest.approx(bandwidth, rel=1e-6)

    def test_flat_times_charge_startup(self):
        # Handshake-dominated regime: time independent of size.
        sizes = [64, 1024, 8192]
        times = [1e-3, 1e-3, 1e-3]
        fit_c, fit_b = fit_linear_cost(sizes, times)
        assert fit_c == pytest.approx(1e-3)
        assert fit_b > 0

    def test_degenerate_inputs(self):
        with pytest.raises(ValueError):
            fit_linear_cost([], [])
        with pytest.raises(ValueError):
            fit_linear_cost([1, 2], [0.1])
        # Single size: everything attributed to throughput.
        fit_c, fit_b = fit_linear_cost([4096], [1e-4])
        assert fit_c >= 0 and fit_b > 0

    def test_calibrated_model_inherits_curves(self):
        model = calibrated_model("host-test", 25e-6, 2e9)
        assert isinstance(model, MachineModel)
        assert model.startup_s == pytest.approx(25e-6)
        assert model.bandwidth_bps == pytest.approx(2e9)
        assert model.cache_bytes == SP2.cache_bytes
        assert model.bcopy_mem_bps == SP2.bcopy_mem_bps
        # Injection overhead keeps the base's inject/startup ratio.
        assert model.inject_s / model.startup_s == pytest.approx(
            SP2.inject_s / SP2.startup_s
        )
        # So does the software overhead (it used to be silently zeroed,
        # which made calibrated per-message cost dip below the fitted
        # intercept).
        assert model.sw_overhead_s / model.startup_s == pytest.approx(
            SP2.sw_overhead_s / SP2.startup_s
        )
        assert model.sw_overhead_s > 0
        # The model is usable by the simulator's cost functions.
        assert model.message_time(1024) > 0
        assert model.reduce_time(8, 4) > 0
