"""SectionBuilder tests: placement-dependent widening of use sections."""

from __future__ import annotations


from conftest import analyzed, compile_to_context


SRC_2D = """
PROGRAM s
  PARAM n = 16
  PROCESSORS p(2, 2)
  REAL a(n, n)
  REAL b(n, n)
  DISTRIBUTE a(BLOCK, BLOCK) ONTO p
  DISTRIBUTE b(BLOCK, BLOCK) ONTO p
  DO t = 1, 4
    b(2:n-1, 2:n-1) = a(1:n-2, 2:n-1)
    a(2:n-1, 2:n-1) = b(2:n-1, 2:n-1)
  END DO
END
"""


class TestWidening:
    def test_section_at_use_is_elementwise(self):
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        sec = ctx.sections.section_at(e.use, e.use.node)
        # no widening at the use itself: both dims are points
        assert all(d.is_point for d in sec.dims)

    def test_section_at_nest_preheader_is_vectorized(self):
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        sec = ctx.sections.section_at(e.use, node)
        counts = [d.count_const() for d in sec.dims]
        assert counts == [14, 14]  # rows 1..14, cols 2..15

    def test_widened_bounds_shifted_by_subscript(self):
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        sec = ctx.sections.section_at(e.use, node)
        assert str(sec.dims[0].lo) == "1"  # (i-1) over i=2..15
        assert str(sec.dims[0].hi) == "14"

    def test_partial_widening_keeps_live_symbol(self):
        # place inside the outer scalarized loop but outside the inner one
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        inner = e.use.node.loops_containing()[-1]
        # the preheader of the innermost loop lives inside the outer loop
        sec = ctx.sections.section_at(e.use, inner.preheader)
        outer_var = e.use.node.loops_containing()[-2].var
        assert outer_var in sec.dims[0].lo.symbols
        assert sec.dims[1].count_const() == 14

    def test_cache_hit_returns_same_object(self):
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        assert ctx.sections.section_at(e.use, node) is ctx.sections.section_at(
            e.use, node
        )

    def test_strided_use_keeps_stride(self):
        ctx, entries = analyzed(
            """
            PROGRAM s2
              PARAM n = 17
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              b(3:n:2) = a(1:n-2:2)
            END
            """
        )
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        sec = ctx.sections.section_at(e.use, node)
        assert sec.dims[0].step == 2
        assert (sec.dims[0].lo.const, sec.dims[0].hi.const) == (1, 15)

    def test_reduction_triplet_section(self):
        ctx, entries = analyzed(
            """
            PROGRAM s3
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              s = SUM(a(2:n-1))
            END
            """
        )
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        sec = ctx.sections.section_at(e.use, node)
        assert (sec.dims[0].lo.const, sec.dims[0].hi.const) == (2, 15)


class TestLoopRanges:
    def test_live_ranges_at_node(self):
        ctx, entries = analyzed(SRC_2D)
        (e,) = entries
        ranges = ctx.sections.live_ranges_at(e.use.node)
        # three loops live: time loop + two scalarized dims
        assert len(ranges) == 3
        assert ranges["t"] == (1, 4)

    def test_triangular_ranges_widened(self):
        ctx = compile_to_context(
            """
            PROGRAM tri
              PARAM n = 8
              REAL a(8, 8)
              DO i = 1, n
                DO j = i, n
                  a(i, j) = 1
                END DO
              END DO
            END
            """
        )
        loops = ctx.cfg.loops
        inner_body = loops[1].header.succs[0]
        ranges = ctx.sections.live_ranges_at(inner_body)
        assert ranges["i"] == (1, 8)
        assert ranges["j"] == (1, 8)  # lower bound widened via i's range
