"""Exact placement (§6.1) tests: the greedy heuristic versus the optimal
assignment, and the intractability guard."""

from __future__ import annotations

import pytest

from repro.core.ilp import (
    CostModel,
    assignment_of_result,
    optimal_placement,
    pairwise_conflicts,
    placement_cost,
)
from repro.core.pipeline import Strategy, compile_program
from repro.errors import PlacementError
from conftest import analyzed


SRC_COMBINABLE = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  REAL d(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DISTRIBUTE d(BLOCK) ONTO p
  c(2:n) = a(1:n-1)
  d(2:n) = b(1:n-1)
END
"""


class TestExactSolver:
    def test_optimal_groups_combinable_entries(self):
        ctx, entries = analyzed(SRC_COMBINABLE)
        assignment, cost = optimal_placement(ctx, entries)
        positions = set(assignment.values())
        assert len(positions) == 1  # both entries at one shared point

    def test_cost_prefers_shared_positions(self):
        ctx, entries = analyzed(SRC_COMBINABLE)
        e1, e2 = entries
        shared = next(iter(e1.candidate_set() & e2.candidate_set()))
        together = placement_cost(
            ctx, {e1.id: shared, e2.id: shared}, entries
        )
        apart = placement_cost(
            ctx, {e1.id: e1.candidates[0], e2.id: e2.candidates[-1]}, entries
        )
        assert together < apart

    def test_greedy_matches_optimal_on_small_cases(self, fig4_source):
        for source in (SRC_COMBINABLE, fig4_source):
            ctx, entries = analyzed(source)
            _, best_cost = optimal_placement(ctx, entries)

            result = compile_program(source, strategy=Strategy.GLOBAL)
            greedy_assignment = assignment_of_result(result)
            live = [e for e in result.entries if e.alive]
            greedy_cost = placement_cost(result.ctx, greedy_assignment, live)
            # The greedy result may differ but must be within 2x here; on
            # these instances it is in fact optimal or better (it also
            # eliminated redundant entries, shrinking the problem).
            assert greedy_cost <= best_cost * 2

    def test_search_limit_guard(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        with pytest.raises(PlacementError, match="NP-hard"):
            optimal_placement(ctx, entries, search_limit=1)

    def test_custom_cost_model(self):
        ctx, entries = analyzed(SRC_COMBINABLE)
        cheap_startup = CostModel(startup=1.0)
        dear_startup = CostModel(startup=100000.0)
        _, c1 = optimal_placement(ctx, entries, cheap_startup)
        _, c2 = optimal_placement(ctx, entries, dear_startup)
        assert c2 > c1


class TestMILPFormulation:
    """§6.1: 'the optimization problem can be formulated as an ILP'."""

    def test_milp_matches_branch_and_bound_when_relaxation_exact(self):
        from repro.core.ilp import milp_placement

        ctx, entries = analyzed(SRC_COMBINABLE)
        _, milp_cost = milp_placement(ctx, entries)
        _, bb_cost = optimal_placement(ctx, entries)
        assert milp_cost == pytest.approx(bb_cost)

    def test_milp_is_lower_bound(self, fig4_source):
        """The MILP relaxes the union-descriptor/threshold rules, so its
        optimum can only be <= the exact grouping-aware optimum (on fig4
        the strided/unstrided section mix makes it strictly lower)."""
        from repro.core.ilp import milp_placement

        ctx, entries = analyzed(fig4_source)
        _, milp_cost = milp_placement(ctx, entries)
        _, bb_cost = optimal_placement(ctx, entries)
        assert milp_cost <= bb_cost + 1e-6

    def test_milp_groups_same_mapping(self):
        from repro.core.ilp import milp_placement

        ctx, entries = analyzed(SRC_COMBINABLE)
        assignment, _ = milp_placement(ctx, entries)
        assert len(set(assignment.values())) == 1

    def test_milp_assignment_is_feasible(self, fig4_source):
        from repro.core.ilp import milp_placement

        ctx, entries = analyzed(fig4_source)
        assignment, _ = milp_placement(ctx, entries)
        for e in entries:
            assert assignment[e.id] in e.candidate_set()

    def test_milp_startup_weight_drives_grouping(self):
        from repro.core.ilp import milp_placement

        ctx, entries = analyzed(SRC_COMBINABLE)
        # With zero startup cost, separation costs nothing extra: the
        # objective is volume-only and any feasible assignment ties.
        _, zero_c = milp_placement(ctx, entries, CostModel(startup=0.0))
        _, norm_c = milp_placement(ctx, entries)
        assert zero_c < norm_c


class TestReductionFlexibility:
    """§6.2 extension: sliding the combine phase to the first use."""

    SRC = """
    PROGRAM redflex
      PARAM n = 16
      PROCESSORS p(4)
      REAL a(n)
      REAL b(n)
      REAL c(n)
      REAL s
      REAL q
      DISTRIBUTE a(BLOCK) ONTO p
      DISTRIBUTE b(BLOCK) ONTO p
      DISTRIBUTE c(BLOCK) ONTO p
      s = SUM(a(1:n))
      c(2:n) = b(1:n-1)
      q = SUM(b(1:n))
      c(1:n) = c(1:n) + s + q
    END
    """

    def test_flexibility_combines_across_statements(self):
        from repro.core.context import CompilerOptions

        off = compile_program(self.SRC, strategy=Strategy.GLOBAL)
        on = compile_program(
            self.SRC,
            strategy=Strategy.GLOBAL,
            options=CompilerOptions(reduction_flexibility=True),
        )
        assert off.call_sites_by_kind()["reduction"] == 2
        assert on.call_sites_by_kind()["reduction"] == 1

    def test_flexible_schedule_validates(self):
        from repro.core.context import CompilerOptions
        from repro.runtime.checker import check_schedule

        result = compile_program(
            self.SRC,
            strategy=Strategy.GLOBAL,
            options=CompilerOptions(reduction_flexibility=True),
        )
        check_schedule(result)

    def test_combine_never_slides_past_first_use(self):
        from repro.core.context import CompilerOptions

        src = self.SRC.replace(
            "c(2:n) = b(1:n-1)", "c(2:n) = b(1:n-1) + s"
        )  # s used immediately after its definition
        result = compile_program(
            src,
            strategy=Strategy.GLOBAL,
            options=CompilerOptions(reduction_flexibility=True),
        )
        # The immediate use of s pins its reduction: no cross-statement
        # combining is possible anymore.
        assert result.call_sites_by_kind()["reduction"] == 2

    def test_default_off_preserves_paper_counts(self):
        from repro.evaluation.fig10_table import build_table

        assert all(r.matches_paper for r in build_table())


class TestConflictGraph:
    def test_disjoint_chains_conflict(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              b(2:n) = a(1:n-1)
              a(2:n) = b(1:n-1)
            END
            """
        )
        # the second use's chain starts after the first statement's nest:
        # they cannot share a position
        assert pairwise_conflicts(ctx, entries) == 1

    def test_overlapping_chains_no_conflict(self):
        ctx, entries = analyzed(SRC_COMBINABLE)
        assert pairwise_conflicts(ctx, entries) == 0
