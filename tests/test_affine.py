"""Unit and property tests for the affine-form algebra."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.affine import Affine, NonAffineError

SYMS = ["i", "j", "k", "n"]


def affine_st():
    return st.builds(
        Affine,
        st.integers(-50, 50),
        st.dictionaries(st.sampled_from(SYMS), st.integers(-5, 5), max_size=3),
    )


def env_st():
    return st.fixed_dictionaries({s: st.integers(-10, 10) for s in SYMS})


class TestConstruction:
    def test_zero_coeffs_dropped(self):
        form = Affine(3, {"i": 0, "j": 2})
        assert form.coeffs == {"j": 2}

    def test_constant(self):
        assert Affine.constant(7).const == 7
        assert Affine.constant(7).is_constant

    def test_symbol(self):
        form = Affine.symbol("i", 3)
        assert form.coeff("i") == 3
        assert not form.is_constant

    def test_symbols_set(self):
        form = Affine(1, {"i": 2, "j": -1})
        assert form.symbols == {"i", "j"}

    def test_equal_forms_hash_equal(self):
        a = Affine(1, {"i": 2, "j": 0})
        b = Affine(1, {"i": 2})
        assert a == b and hash(a) == hash(b)


class TestAlgebra:
    def test_add(self):
        a = Affine(1, {"i": 2})
        b = Affine(3, {"i": -2, "j": 1})
        assert a + b == Affine(4, {"j": 1})

    def test_add_int(self):
        assert Affine(1, {"i": 1}) + 5 == Affine(6, {"i": 1})
        assert 5 + Affine(1, {"i": 1}) == Affine(6, {"i": 1})

    def test_sub(self):
        a = Affine(1, {"i": 2})
        assert a - a == Affine(0)

    def test_rsub(self):
        assert 10 - Affine(1, {"i": 1}) == Affine(9, {"i": -1})

    def test_neg(self):
        assert -Affine(1, {"i": 2}) == Affine(-1, {"i": -2})

    def test_scale(self):
        assert Affine(1, {"i": 2}).scaled(3) == Affine(3, {"i": 6})
        assert Affine(1, {"i": 2}).scaled(0) == Affine(0)

    def test_mul_constant_form(self):
        assert Affine(2, {"i": 1}) * Affine(3) == Affine(6, {"i": 3})

    def test_mul_nonlinear_raises(self):
        with pytest.raises(NonAffineError):
            _ = Affine(0, {"i": 1}) * Affine(0, {"j": 1})

    def test_substitute(self):
        form = Affine(1, {"i": 2, "j": 1})
        out = form.substitute("i", Affine(3, {"k": 1}))
        assert out == Affine(7, {"k": 2, "j": 1})

    def test_substitute_int(self):
        assert Affine(0, {"i": 2}).substitute("i", 4) == Affine(8)

    def test_substitute_absent_symbol_is_identity(self):
        form = Affine(1, {"i": 2})
        assert form.substitute("z", 99) is form


class TestEvaluation:
    def test_evaluate(self):
        form = Affine(1, {"i": 2, "j": -1})
        assert form.evaluate({"i": 3, "j": 4}) == 3

    def test_evaluate_unbound_raises(self):
        with pytest.raises(NonAffineError):
            Affine(0, {"i": 1}).evaluate({})

    def test_interval_positive_coeff(self):
        assert Affine(0, {"i": 2}).interval({"i": (1, 5)}) == (2, 10)

    def test_interval_negative_coeff(self):
        assert Affine(0, {"i": -2}).interval({"i": (1, 5)}) == (-10, -2)

    def test_interval_mixed(self):
        form = Affine(1, {"i": 1, "j": -1})
        assert form.interval({"i": (0, 3), "j": (0, 2)}) == (-1, 4)

    def test_interval_missing_range_raises(self):
        with pytest.raises(NonAffineError):
            Affine(0, {"i": 1}).interval({})

    def test_interval_empty_range_raises(self):
        with pytest.raises(NonAffineError):
            Affine(0, {"i": 1}).interval({"i": (3, 2)})


class TestProperties:
    @given(affine_st(), affine_st(), env_st())
    def test_add_matches_pointwise(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affine_st(), affine_st(), env_st())
    def test_sub_matches_pointwise(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(affine_st(), st.integers(-7, 7), env_st())
    def test_scale_matches_pointwise(self, a, k, env):
        assert a.scaled(k).evaluate(env) == k * a.evaluate(env)

    @given(affine_st(), st.sampled_from(SYMS), affine_st(), env_st())
    def test_substitution_matches_pointwise(self, a, sym, repl, env):
        substituted = a.substitute(sym, repl)
        env2 = dict(env)
        env2[sym] = repl.evaluate(env)
        assert substituted.evaluate(env) == a.evaluate(env2)

    @given(affine_st(), env_st())
    def test_interval_contains_value(self, a, env):
        ranges = {s: (min(v, v + 3), max(v, v + 3)) for s, v in env.items()}
        lo, hi = a.interval(ranges)
        assert lo <= a.evaluate(env) <= hi

    @given(affine_st())
    def test_str_roundtrip_stability(self, a):
        # Display must be deterministic and non-empty.
        assert str(a) == str(Affine(a.const, a.coeffs))
        assert str(a)
