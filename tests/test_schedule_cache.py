"""The two-tier schedule cache: LRU byte budget, disk write-through,
corruption quarantine, and a concurrent property test.

The property test is the satellite the issue asks for: random
interleavings of gets/puts across threads, random evictions (tiny byte
budgets), and corrupted or truncated disk entries must never return a
value under the wrong key and never raise — a corrupt entry is a miss,
and the next durable put rewrites it clean.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.cache import ScheduleCache, canonical_bytes


def value_for(key: str, salt: int = 0) -> dict:
    """A recognizable value: carries its own key so any cross-key mixup
    is detectable."""
    return {"for_key": key, "salt": salt, "payload": [salt] * 3}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ScheduleCache()
        assert cache.lookup("k") == (None, None)
        cache.put("k", value_for("k"))
        value, tier = cache.lookup("k")
        assert value == value_for("k")
        assert tier == "memory"
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1

    def test_byte_budget_evicts_lru(self):
        small = len(canonical_bytes(value_for("k0")))
        cache = ScheduleCache(memory_budget_bytes=3 * small)
        for i in range(4):
            cache.put(f"k{i}", value_for(f"k{i}"))
        assert cache.stats.evictions >= 1
        assert cache.memory_bytes <= 3 * small
        # the most recent entry always survives
        assert cache.get("k3") == value_for("k3")

    def test_lru_order_respects_gets(self):
        small = len(canonical_bytes(value_for("k0")))
        cache = ScheduleCache(memory_budget_bytes=2 * small)
        cache.put("a", value_for("a"))
        cache.put("b", value_for("b"))
        cache.get("a")  # refresh a: b is now the LRU
        cache.put("c", value_for("c"))
        assert cache.get("a") == value_for("a")
        assert cache.get("b") is None

    def test_oversized_value_never_admitted(self):
        cache = ScheduleCache(memory_budget_bytes=8)
        cache.put("big", value_for("big"))
        assert len(cache) == 0
        assert cache.memory_bytes == 0

    def test_zero_budget_with_disk_is_disk_only(self, tmp_path):
        cache = ScheduleCache(memory_budget_bytes=0, cache_dir=tmp_path)
        cache.put("k", value_for("k"))
        # not admitted to memory, but the write-through still lands
        fresh = ScheduleCache(cache_dir=tmp_path)
        value, tier = fresh.lookup("k")
        assert value == value_for("k")
        assert tier == "disk"

    def test_unbounded_budget_never_evicts(self):
        cache = ScheduleCache(memory_budget_bytes=None)
        for i in range(200):
            cache.put(f"k{i}", value_for(f"k{i}"))
        assert len(cache) == 200
        assert cache.stats.evictions == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ScheduleCache(memory_budget_bytes=-1)


class TestDiskTier:
    def test_write_through_and_promotion(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        fresh = ScheduleCache(cache_dir=tmp_path)
        value, tier = fresh.lookup("abcd")
        assert (value, tier) == (value_for("abcd"), "disk")
        # promoted: the second lookup is a memory hit
        assert fresh.lookup("abcd")[1] == "memory"

    def test_sharded_layout(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        assert (tmp_path / "ab" / "abcd.json").exists()

    def test_non_durable_put_skips_disk(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("k", value_for("k"), durable=False)
        assert ScheduleCache(cache_dir=tmp_path).get("k") is None

    def test_truncated_entry_is_miss_and_unlinked(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        path = tmp_path / "ab" / "abcd.json"
        path.write_bytes(path.read_bytes()[:10])
        fresh = ScheduleCache(cache_dir=tmp_path)
        assert fresh.lookup("abcd") == (None, None)
        assert fresh.stats.corrupt == 1
        assert not path.exists()
        # the next durable put rewrites a clean entry
        fresh.put("abcd", value_for("abcd", salt=2))
        assert ScheduleCache(cache_dir=tmp_path).get("abcd") == value_for(
            "abcd", salt=2
        )

    def test_checksum_mismatch_is_miss(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        path = tmp_path / "ab" / "abcd.json"
        envelope = json.loads(path.read_text())
        envelope["value"]["salt"] = 999  # flip a bit, keep valid JSON
        path.write_text(json.dumps(envelope))
        fresh = ScheduleCache(cache_dir=tmp_path)
        assert fresh.lookup("abcd") == (None, None)
        assert fresh.stats.corrupt == 1

    def test_wrong_key_envelope_is_miss(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        cache.put("efgh", value_for("efgh"))
        # graft efgh's (self-consistent) envelope under abcd's path: the
        # embedded key must catch the rename
        src = tmp_path / "ef" / "efgh.json"
        dst = tmp_path / "ab" / "abcd.json"
        dst.write_text(src.read_text())
        fresh = ScheduleCache(cache_dir=tmp_path)
        assert fresh.lookup("abcd") == (None, None)
        assert fresh.stats.corrupt == 1

    def test_invalidate_drops_both_tiers(self, tmp_path):
        cache = ScheduleCache(cache_dir=tmp_path)
        cache.put("abcd", value_for("abcd"))
        cache.invalidate("abcd")
        assert cache.get("abcd") is None
        assert not (tmp_path / "ab" / "abcd.json").exists()


KEYS = [f"{a}{b}cafe" for a in "abcd" for b in "0123"]

OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(0, 5)),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.just(0)),
        st.tuples(st.just("corrupt"), st.sampled_from(KEYS),
                  st.integers(0, 2)),
    ),
    min_size=1, max_size=40,
)


@given(per_thread=st.lists(OPS, min_size=1, max_size=4),
       budget=st.sampled_from([None, 0, 64, 150, 10_000]))
@settings(max_examples=25, deadline=None)
def test_property_concurrent_ops_never_wrong_never_crash(
    per_thread, budget
):
    """Concurrent gets/puts/corruptions under random tiny budgets: every
    observed value belongs to the key it was asked for, and nothing
    raises.  The tempdir is created inside the test (a fixture would
    trip hypothesis's health check on differing executions)."""
    with tempfile.TemporaryDirectory() as tmp:
        cache = ScheduleCache(memory_budget_bytes=budget, cache_dir=tmp)
        errors: list[BaseException] = []

        def corrupt(key: str, mode: int) -> None:
            path = os.path.join(tmp, key[:2], f"{key}.json")
            try:
                if mode == 0:
                    with open(path, "r+b") as fh:
                        fh.truncate(7)
                elif mode == 1:
                    with open(path, "w") as fh:
                        fh.write("{not json")
                else:
                    with open(path) as fh:
                        env = json.load(fh)
                    env["value"] = {"for_key": "WRONG", "salt": -1,
                                    "payload": []}
                    with open(path, "w") as fh:
                        json.dump(env, fh)
            except (OSError, ValueError):
                pass  # racing an unlink/rewrite is part of the test

        def worker(ops) -> None:
            try:
                for op, key, arg in ops:
                    if op == "put":
                        cache.put(key, value_for(key, arg))
                    elif op == "get":
                        value = cache.get(key)
                        if value is not None:
                            assert value["for_key"] == key
                    else:
                        corrupt(key, arg)
            except BaseException as exc:  # noqa: BLE001 - report below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(ops,))
            for ops in per_thread
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors

        # post-quiescence: every surviving entry still maps to its key,
        # in memory and on disk
        for key in KEYS:
            value = cache.get(key)
            if value is not None:
                assert value["for_key"] == key
            fresh = ScheduleCache(cache_dir=tmp)
            value = fresh.get(key)
            if value is not None:
                assert value["for_key"] == key
