"""The exact anytime placement solver (repro.solver).

Three layers: the pseudo-boolean kernel (model normalization, DFS with
propagation, deadline/node budgets), the whole-pipeline encoding
(encode → solve → decode round-trips that the model itself certifies),
and the pass/pipeline integration (anytime contract, W0604 degradation
ladder, never-worse-than-greedy guarantee on random programs).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.context import CompilerOptions
from repro.core.pipeline import Strategy, compile_program
from repro.errors import SOLVER_FALLBACK_CODE
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.checker import check_schedule
from repro.solver import (
    SAT,
    UNKNOWN,
    UNSAT,
    PBModel,
    PBSolver,
    build_model,
    decode_assignment,
    solve_schedule,
)
from repro.solver.bnb import neg, pos


# ---------------------------------------------------------------------------
# PB kernel
# ---------------------------------------------------------------------------


class TestPBModel:
    def test_exactly_one_sat(self):
        m = PBModel()
        a, b, c = m.new_var(), m.new_var(), m.new_var()
        m.add_exactly_one([pos(a), pos(b), pos(c)])
        status, assignment, _ = PBSolver(m).solve()
        assert status == SAT
        assert sum(assignment[v] for v in (a, b, c)) == 1
        assert m.satisfied(assignment)

    def test_contradiction_unsat(self):
        m = PBModel()
        a = m.new_var()
        m.add_clause([pos(a)])
        m.add_clause([neg(a)])
        status, assignment, _ = PBSolver(m).solve()
        assert status == UNSAT and assignment is None

    def test_at_most_k(self):
        m = PBModel()
        xs = [m.new_var() for _ in range(5)]
        m.add_at_most_k([pos(x) for x in xs], 2)
        # Force three on: over the cap.
        for x in xs[:3]:
            m.add_clause([pos(x)])
        status, _, _ = PBSolver(m).solve()
        assert status == UNSAT

    def test_weighted_le_respected(self):
        m = PBModel()
        xs = [m.new_var() for _ in range(3)]
        m.add_weighted_le([(10, pos(x)) for x in xs], 15)
        m.add_clause([pos(xs[0])])
        m.add_clause([pos(xs[1])])
        status, _, _ = PBSolver(m).solve()
        assert status == UNSAT
        m2 = PBModel()
        ys = [m2.new_var() for _ in range(3)]
        m2.add_weighted_le([(10, pos(y)) for y in ys], 15)
        m2.add_clause([pos(ys[0])])
        status, assignment, _ = PBSolver(m2).solve()
        assert status == SAT
        assert assignment[ys[1]] == 0 and assignment[ys[2]] == 0

    def test_negative_coefficient_normalization(self):
        # 3a - 2b >= 1  ==  3a + 2(!b) >= 3: a must hold, b free only
        # when a is true.
        m = PBModel()
        a, b = m.new_var(), m.new_var()
        m.add_ge([(3, pos(a)), (-2, pos(b))], 1)
        status, assignment, _ = PBSolver(m).solve()
        assert status == SAT and m.satisfied(assignment)
        m.add_clause([neg(a)])
        status, _, _ = PBSolver(m).solve()
        assert status == UNSAT

    def test_complementary_pair_cancellation(self):
        # 2a + 2(!a) >= 2 is a tautology: cancelled away entirely.
        m = PBModel()
        a = m.new_var()
        m.add_ge([(2, pos(a)), (2, neg(a))], 2)
        assert not m.constraints and not m.infeasible

    def test_trivially_infeasible(self):
        m = PBModel()
        a = m.new_var()
        m.add_ge([(1, pos(a))], 5)
        assert m.infeasible
        assert PBSolver(m).solve()[0] == UNSAT

    def test_node_limit_unknown(self):
        # Pigeonhole 5 into 4: UNSAT, but a 1-node budget can't prove it.
        m = PBModel()
        holes = [[m.new_var() for _ in range(4)] for _ in range(5)]
        for row in holes:
            m.add_exactly_one([pos(v) for v in row])
        for h in range(4):
            m.add_at_most_one([pos(holes[p][h]) for p in range(5)])
        status, _, nodes = PBSolver(m).solve(node_limit=1)
        assert status == UNKNOWN
        status, _, _ = PBSolver(m).solve()
        assert status == UNSAT

    def test_expired_deadline_unknown(self):
        import time

        m = PBModel()
        xs = [m.new_var() for _ in range(200)]
        for x in xs:
            m.add_clause([pos(x), neg(x)])
        status, _, _ = PBSolver(m).solve(deadline=time.monotonic() - 1.0)
        assert status == UNKNOWN

    def test_copy_isolates_added_constraints(self):
        m = PBModel()
        a = m.new_var()
        q = m.copy()
        q.add_clause([neg(a)])
        m.add_clause([pos(a)])
        assert PBSolver(m).solve()[0] == SAT
        assert PBSolver(q).solve()[0] == SAT


# ---------------------------------------------------------------------------
# Encode / decode round-trip
# ---------------------------------------------------------------------------


def _analyzed_entries(name: str):
    from repro.core import pipeline as pl

    result = compile_program(BENCHMARKS[name], strategy=Strategy.GLOBAL)
    pl._reset_eliminations(result.entries)
    return result.ctx, result.entries, result.call_sites()


@pytest.mark.parametrize("name", ["trimesh", "hydflo_hydro"])
class TestRoundTrip:
    def test_encode_solve_decode(self, name):
        ctx, entries, seed = _analyzed_entries(name)
        em = build_model(ctx, entries)
        model = em.model.copy()
        model.add_at_most_k(
            [lv << 1 for lv in em.leader_index.values()], seed
        )
        status, assignment, _ = PBSolver(model).solve(
            decide_order=em.decide_order(), prefer=em.prefer()
        )
        assert status == SAT
        assert model.satisfied(assignment)
        decoded = decode_assignment(em, assignment)
        assert decoded.messages <= seed
        live = {e.id: e for e in entries if e.alive and e.candidates}
        placed = set(decoded.placements)
        eliminated = set(decoded.eliminations)
        # Every live entry has exactly one fate.
        assert placed | eliminated == set(live)
        assert not placed & eliminated
        for eid, position in decoded.placements.items():
            assert position in live[eid].candidate_set()
        for loser, winner in decoded.eliminations.items():
            assert winner in placed
        grouped = [eid for _, members in decoded.groups for eid in members]
        assert sorted(grouped) == sorted(placed)

    def test_lower_bound_bracket(self, name):
        ctx, entries, seed = _analyzed_entries(name)
        em = build_model(ctx, entries)
        lb = em.lower_bound()
        assert 1 <= lb <= seed


# ---------------------------------------------------------------------------
# Anytime driver + pass integration
# ---------------------------------------------------------------------------


class TestAnytime:
    def test_zero_budget_returns_seed(self):
        ctx, entries, seed = _analyzed_entries("trimesh")
        decoded, report = solve_schedule(ctx, entries, seed, budget_ms=0)
        assert decoded is None
        assert report.deadline_hit
        assert report.best_messages == seed and not report.improved

    def test_zero_budget_pipeline_equals_comb(self):
        comb = compile_program(BENCHMARKS["trimesh"], strategy="comb")
        exact = compile_program(BENCHMARKS["trimesh"], options=CompilerOptions(
            pass_pipeline=("exact",), solver_budget_ms=0,
        ))
        assert not exact.degradations
        assert exact.stats["solver_improved"] == 0
        assert exact.call_sites() == comb.call_sites()
        assert (
            [(str(pc.position), sorted(e.label for e in pc.entries))
             for pc in exact.placed]
            == [(str(pc.position), sorted(e.label for e in pc.entries))
                for pc in comb.placed]
        )
        check_schedule(exact)

    def test_tiny_budget_never_errors(self):
        # 1 ms cannot even finish encoding: the anytime contract still
        # returns the greedy seed, cleanly and undegraded.
        exact = compile_program(BENCHMARKS["gravity"], options=CompilerOptions(
            pass_pipeline=("exact",), solver_budget_ms=1,
        ))
        comb = compile_program(BENCHMARKS["gravity"], strategy="comb")
        assert not exact.degradations
        assert exact.call_sites() == comb.call_sites()
        check_schedule(exact)

    def test_proves_optimality_within_budget(self):
        exact = compile_program(BENCHMARKS["trimesh"], options=CompilerOptions(
            pass_pipeline=("exact",), solver_budget_ms=8000,
        ))
        assert exact.stats["solver_proved"] == 1
        assert exact.call_sites() <= compile_program(
            BENCHMARKS["trimesh"], strategy="comb"
        ).call_sites()
        check_schedule(exact)


class TestDegradation:
    def test_solver_crash_degrades_to_comb_with_w0604(self, monkeypatch):
        from repro.solver import search

        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(search, "solve_schedule", boom)
        comb = compile_program(BENCHMARKS["trimesh"], strategy="comb")
        exact = compile_program(BENCHMARKS["trimesh"], options=CompilerOptions(
            pass_pipeline=("exact",),
        ))
        (event,) = exact.degradations
        assert event.code == SOLVER_FALLBACK_CODE
        assert event.pass_name == "exact"
        assert event.diagnostic().code == "W0604"
        assert exact.call_sites() == comb.call_sites()
        check_schedule(exact)

    def test_solver_crash_strict_reraises(self, monkeypatch):
        from repro.errors import ReproError
        from repro.solver import search

        def boom(*args, **kwargs):
            raise RuntimeError("solver exploded")

        monkeypatch.setattr(search, "solve_schedule", boom)
        with pytest.raises((RuntimeError, ReproError)):
            compile_program(BENCHMARKS["trimesh"], options=CompilerOptions(
                pass_pipeline=("exact",), strict=True,
            ))

    def test_ilp_fallback_reports_w0604(self, monkeypatch):
        from repro.core import pipeline as pl

        def boom(*args, **kwargs):
            raise RuntimeError("milp exploded")

        monkeypatch.setattr(pl, "ilp_choose", boom)
        comb = compile_program(BENCHMARKS["trimesh"], strategy="comb")
        result = compile_program(BENCHMARKS["trimesh"], options=CompilerOptions(
            placement_search="ilp",
        ))
        (event,) = result.degradations
        assert event.code == SOLVER_FALLBACK_CODE
        assert event.pass_name == "ilp"
        assert event.to_dict()["code"] == "W0604"
        assert result.call_sites() == comb.call_sites()


# ---------------------------------------------------------------------------
# Property: exact is oracle-accepted and never worse than greedy comb
# ---------------------------------------------------------------------------


N = 12
ARRAYS = ["u", "v", "w"]


@st.composite
def program_source(draw):
    stmts = []
    for _ in range(draw(st.integers(1, 4))):
        dst = draw(st.sampled_from(ARRAYS))
        terms = []
        for _ in range(draw(st.integers(1, 2))):
            src = draw(st.sampled_from(ARRAYS + [dst]))
            shift = draw(st.integers(-2, 2))
            terms.append(f"{src}({3 + shift}:{N - 2 + shift})")
        stmts.append(f"{dst}(3:{N - 2}) = {' + '.join(terms)}")
    body = "\n".join(stmts)
    if draw(st.booleans()):
        body = f"DO tstep = 1, 3\n{body}\nEND DO"
    decls = "\n".join(
        f"REAL {a}({N})\nDISTRIBUTE {a}(BLOCK) ONTO p" for a in ARRAYS
    )
    return (
        f"PROGRAM randsolve\nPARAM n = {N}\nPROCESSORS p(3)\n"
        f"{decls}\n{body}\nEND PROGRAM"
    )


@settings(max_examples=12, deadline=None)
@given(source=program_source())
def test_exact_random_programs_sound_and_never_worse(source):
    comb = compile_program(source, strategy="comb")
    exact = compile_program(source, options=CompilerOptions(
        pass_pipeline=("exact",), solver_budget_ms=1500,
    ))
    assert not exact.degradations
    assert exact.call_sites() <= comb.call_sites()
    # Every placement sits on a legal candidate of its entry.
    for pc in exact.placed:
        for e in pc.entries:
            assert pc.position in e.candidate_set()
    check_schedule(exact)
