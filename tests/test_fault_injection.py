"""Fault injection: break each compiler pass deliberately and verify the
dynamic oracles (schedule checker / SPMD executor) catch the miscompile.

This is the test-the-tests layer: a verification oracle that cannot
detect a broken redundancy eliminator, a lying dependence test, or an
over-eager Earliest analysis would be worthless as evidence.
"""

from __future__ import annotations

import pytest

from repro.core import earliest as earliest_mod
from repro.core import redundancy as redundancy_mod
from repro.core.pipeline import Strategy, compile_program
from repro.dependence import tests as dep_mod
from repro.dependence.tests import DepResult
from repro.errors import ReproError, SimulationError
from repro.runtime.checker import check_schedule
from repro.runtime.spmd import execute_spmd

# A program whose correctness depends on every pass being right: the
# time-carried stencil plus a redundant second reader.
SOURCE = """
PROGRAM victim
  PARAM n = 12
  PROCESSORS p(3)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DO t = 1, 3
    b(2:n-1) = a(1:n-2) + a(3:n)
    c(2:n-1) = a(1:n-2)
    a(2:n-1) = b(2:n-1) + c(2:n-1)
  END DO
END PROGRAM
"""


def oracles_reject(result) -> None:
    """At least one dynamic oracle must flag the schedule."""
    caught = 0
    try:
        check_schedule(result)
    except ReproError:
        # Usually SimulationError (stale/missing data); a malformed
        # schedule can also surface as a section-evaluation error.
        caught += 1
    try:
        execute_spmd(result)
    except ReproError:
        caught += 1
    assert caught > 0, "miscompiled schedule slipped past both oracles"


def oracles_accept(result) -> None:
    check_schedule(result)
    execute_spmd(result)


class TestBaseline:
    def test_unbroken_compiler_passes_oracles(self):
        for strategy in Strategy:
            oracles_accept(compile_program(SOURCE, strategy=strategy))


class TestBrokenDependenceAnalysis:
    def test_no_dependence_anywhere(self, monkeypatch):
        """A dependence test that reports independence everywhere lets
        Latest hoist the time-carried exchange out of the loop — stale
        first-iteration data forever."""
        monkeypatch.setattr(
            dep_mod.DependenceTester,
            "flow_dependence",
            lambda self, ds, dr, us, ur: DepResult(frozenset(), False, 0),
        )
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)

    def test_missing_carried_levels(self, monkeypatch):
        """Deps reported loop-independent but never carried: the exchange
        stays inside the iteration but Earliest walks too far."""
        original = dep_mod.DependenceTester._test

        def lobotomized(self, ds, dr, us, ur):
            real = original(self, ds, dr, us, ur)
            return DepResult(frozenset(), real.loop_independent, real.cnl)

        monkeypatch.setattr(dep_mod.DependenceTester, "_test", lobotomized)
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)


class TestBrokenEarliest:
    def test_test_always_false(self, monkeypatch):
        """An Earliest walk that never stops hoists every exchange to
        ENTRY — initial values masquerade as each iteration's data."""
        monkeypatch.setattr(
            earliest_mod, "_test",
            lambda ctx, d, use: type(d).__name__ == "EntryDef",
        )
        result = compile_program(SOURCE, strategy="nored")
        oracles_reject(result)


class TestBrokenRedundancy:
    def test_subsumes_always_true(self, monkeypatch):
        """A redundancy eliminator that believes everything subsumes
        everything deletes messages whose data differs."""
        monkeypatch.setattr(
            redundancy_mod, "subsumes_at", lambda ctx, w, l, p: w is not l
        )
        # Also break the coverage positions so the elimination 'succeeds'.
        monkeypatch.setattr(
            redundancy_mod,
            "coverage_positions",
            lambda ctx, w, l: w.candidate_set() & l.candidate_set(),
        )
        result = compile_program(SOURCE, strategy="comb")
        # the b-read (a shifted both ways) now 'covers' the c-read etc.
        if result.eliminated_entries():
            oracles_reject(result)
        else:
            pytest.skip("injection did not trigger an elimination")


class TestBrokenSections:
    def test_sections_reported_too_narrow(self, monkeypatch):
        """If the section computation forgets to widen over loops, the
        vectorized message carries one iteration's element only."""
        from repro.comm import entries as entries_mod

        original = entries_mod.SectionBuilder._build

        def narrowed(self, use, placement):
            # Compute the section as if placed right at the use: no
            # widening at all.
            return original(self, use, use.node)

        monkeypatch.setattr(entries_mod.SectionBuilder, "_build", narrowed)
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)


class TestBrokenAnchoring:
    def test_ops_anchored_at_program_end(self):
        result = compile_program(SOURCE, strategy="comb")
        from repro.ir.cfg import Position

        for pc in result.placed:
            pc.position = Position(result.ctx.cfg.exit.id, -1)
        oracles_reject(result)
