"""Fault injection: break each compiler pass deliberately and verify the
dynamic oracles (schedule checker / SPMD executor) catch the miscompile.

This is the test-the-tests layer: a verification oracle that cannot
detect a broken redundancy eliminator, a lying dependence test, or an
over-eager Earliest analysis would be worthless as evidence.
"""

from __future__ import annotations

import pytest

from repro.core import earliest as earliest_mod
from repro.core import redundancy as redundancy_mod
from repro.core.pipeline import Strategy, compile_program
from repro.dependence import tests as dep_mod
from repro.dependence.tests import DepResult
from repro.errors import ReproError
from repro.runtime.checker import check_schedule
from repro.runtime.spmd import execute_spmd

# A program whose correctness depends on every pass being right: the
# time-carried stencil plus a redundant second reader.
SOURCE = """
PROGRAM victim
  PARAM n = 12
  PROCESSORS p(3)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DO t = 1, 3
    b(2:n-1) = a(1:n-2) + a(3:n)
    c(2:n-1) = a(1:n-2)
    a(2:n-1) = b(2:n-1) + c(2:n-1)
  END DO
END PROGRAM
"""


def oracles_reject(result) -> None:
    """At least one dynamic oracle must flag the schedule."""
    caught = 0
    try:
        check_schedule(result)
    except ReproError:
        # Usually SimulationError (stale/missing data); a malformed
        # schedule can also surface as a section-evaluation error.
        caught += 1
    try:
        execute_spmd(result)
    except ReproError:
        caught += 1
    assert caught > 0, "miscompiled schedule slipped past both oracles"


def oracles_accept(result) -> None:
    check_schedule(result)
    execute_spmd(result)


class TestBaseline:
    def test_unbroken_compiler_passes_oracles(self):
        for strategy in Strategy:
            oracles_accept(compile_program(SOURCE, strategy=strategy))


class TestBrokenDependenceAnalysis:
    def test_no_dependence_anywhere(self, monkeypatch):
        """A dependence test that reports independence everywhere lets
        Latest hoist the time-carried exchange out of the loop — stale
        first-iteration data forever."""
        monkeypatch.setattr(
            dep_mod.DependenceTester,
            "flow_dependence",
            lambda self, ds, dr, us, ur: DepResult(frozenset(), False, 0),
        )
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)

    def test_missing_carried_levels(self, monkeypatch):
        """Deps reported loop-independent but never carried: the exchange
        stays inside the iteration but Earliest walks too far."""
        original = dep_mod.DependenceTester._test

        def lobotomized(self, ds, dr, us, ur):
            real = original(self, ds, dr, us, ur)
            return DepResult(frozenset(), real.loop_independent, real.cnl)

        monkeypatch.setattr(dep_mod.DependenceTester, "_test", lobotomized)
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)


class TestBrokenEarliest:
    def test_test_always_false(self, monkeypatch):
        """An Earliest walk that never stops hoists every exchange to
        ENTRY — initial values masquerade as each iteration's data."""
        monkeypatch.setattr(
            earliest_mod, "_test",
            lambda ctx, d, use: type(d).__name__ == "EntryDef",
        )
        result = compile_program(SOURCE, strategy="nored")
        oracles_reject(result)


class TestBrokenRedundancy:
    def test_subsumes_always_true(self, monkeypatch):
        """A redundancy eliminator that believes everything subsumes
        everything deletes messages whose data differs."""
        monkeypatch.setattr(
            redundancy_mod, "subsumes_at", lambda ctx, w, l, p: w is not l
        )
        # Also break the coverage positions so the elimination 'succeeds'.
        monkeypatch.setattr(
            redundancy_mod,
            "coverage_positions",
            lambda ctx, w, l: w.candidate_set() & l.candidate_set(),
        )
        result = compile_program(SOURCE, strategy="comb")
        # the b-read (a shifted both ways) now 'covers' the c-read etc.
        if result.eliminated_entries():
            oracles_reject(result)
        else:
            pytest.skip("injection did not trigger an elimination")


class TestBrokenSections:
    def test_sections_reported_too_narrow(self, monkeypatch):
        """If the section computation forgets to widen over loops, the
        vectorized message carries one iteration's element only."""
        from repro.comm import entries as entries_mod

        original = entries_mod.SectionBuilder._build

        def narrowed(self, use, placement):
            # Compute the section as if placed right at the use: no
            # widening at all.
            return original(self, use, use.node)

        monkeypatch.setattr(entries_mod.SectionBuilder, "_build", narrowed)
        result = compile_program(SOURCE, strategy="comb")
        oracles_reject(result)


class TestBrokenAnchoring:
    def test_ops_anchored_at_program_end(self):
        result = compile_program(SOURCE, strategy="comb")
        from repro.ir.cfg import Position

        for pc in result.placed:
            pc.position = Position(result.ctx.cfg.exit.id, -1)
        oracles_reject(result)


# ---------------------------------------------------------------------------
# Chaos harness: the *other* direction.  The tests above prove the oracles
# catch silently-wrong passes; the tests below prove that a *loudly*-failing
# pass (one that raises) degrades to a sound schedule instead of failing
# the compile.  Every optimization pass gets a fault injected through the
# pipeline module namespace; the degraded result must pass both dynamic
# oracles and carry the matching DegradationEvent.  strict=True must
# re-raise the injected exception unchanged.
# ---------------------------------------------------------------------------

from repro.core import pipeline as pl
from repro.core.context import CompilerOptions
from repro.core.earliest import compute_earliest as real_compute_earliest
from repro.errors import DEGRADED_CODE, PlacementError


def _boom(exc_type):
    def chaos(*args, **kwargs):
        raise exc_type("injected chaos")

    return chaos


# (attr patched in repro.core.pipeline, strategy, DegradationEvent.pass_name)
CHAOS_PASSES = [
    ("compute_latest", "comb", "latest"),
    ("compute_earliest", "comb", "earliest"),
    ("mark_candidates", "comb", "candidates"),
    ("verify_candidates", "comb", "candidates"),
    ("subset_eliminate", "comb", "subset"),
    ("redundancy_eliminate", "comb", "redundancy"),
    ("greedy_choose", "comb", "greedy"),
    ("_place_earliest", "nored", "earliest-placement"),
]


class TestChaosDegradedMode:
    @pytest.mark.parametrize("exc_type", [PlacementError, RuntimeError])
    @pytest.mark.parametrize("attr,strategy,pass_name", CHAOS_PASSES)
    def test_faulty_pass_degrades_to_sound_schedule(
        self, monkeypatch, attr, strategy, pass_name, exc_type
    ):
        monkeypatch.setattr(pl, attr, _boom(exc_type))
        result = compile_program(SOURCE, strategy=strategy)
        assert result.degraded
        events = [e for e in result.degradations if e.pass_name == pass_name]
        assert events, (
            f"no DegradationEvent for pass {pass_name!r}; got "
            f"{[e.pass_name for e in result.degradations]}"
        )
        assert events[0].error_type == exc_type.__name__
        assert "injected chaos" in events[0].error
        oracles_accept(result)

    @pytest.mark.parametrize("exc_type", [PlacementError, RuntimeError])
    @pytest.mark.parametrize("attr,strategy,pass_name", CHAOS_PASSES)
    def test_strict_mode_reraises_the_fault(
        self, monkeypatch, attr, strategy, pass_name, exc_type
    ):
        monkeypatch.setattr(pl, attr, _boom(exc_type))
        with pytest.raises(exc_type, match="injected chaos"):
            compile_program(
                SOURCE, strategy=strategy,
                options=CompilerOptions(strict=True),
            )

    def test_greedy_fault_falls_back_to_latest_schedule(self, monkeypatch):
        """A dead combining pass degrades to exactly the ORIG schedule:
        every entry alive, alone, at its Latest point."""
        monkeypatch.setattr(pl, "greedy_choose", _boom(RuntimeError))
        degraded = compile_program(SOURCE, strategy="comb")
        orig = compile_program(SOURCE, strategy="orig")
        assert not degraded.eliminated_entries()
        assert degraded.stats.get("redundant", 0) == 0
        assert [pc.position for pc in degraded.placed] == [
            pc.position for pc in orig.placed
        ]
        oracles_accept(degraded)

    def test_redundancy_fault_rolls_back_partial_eliminations(
        self, monkeypatch
    ):
        """A midway redundancy crash must not leave half the entries
        eliminated: the pass is rolled back as a unit."""
        real = redundancy_mod.subsumes_at
        calls = {"n": 0}

        def dies_late(ctx, winner, loser, pos):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("injected chaos")
            return real(ctx, winner, loser, pos)

        monkeypatch.setattr(redundancy_mod, "subsumes_at", dies_late)
        result = compile_program(SOURCE, strategy="comb")
        if not any(e.pass_name == "redundancy" for e in result.degradations):
            pytest.skip("injection point never reached on this program")
        assert not result.eliminated_entries()
        assert result.stats["redundant"] == 0
        oracles_accept(result)

    def test_degradation_event_shape(self, monkeypatch):
        monkeypatch.setattr(pl, "redundancy_eliminate", _boom(RuntimeError))
        result = compile_program(SOURCE, strategy="comb")
        (event,) = result.degradations
        assert event.scope == "whole pass"
        diag = event.diagnostic()
        assert diag.code == DEGRADED_CODE
        assert diag.severity == "warning"
        assert "redundancy" in diag.message
        payload = event.to_dict()
        assert payload["pass"] == "redundancy"
        assert payload["error_type"] == "RuntimeError"


class TestChaosPerEntry:
    def test_single_entry_fault_degrades_only_that_entry(self, monkeypatch):
        """The per-entry boundary: one flaky Earliest computation degrades
        one entry; the rest keep their full candidate chains."""
        calls = {"n": 0}

        def flaky(ctx, entry):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("injected chaos")
            return real_compute_earliest(ctx, entry)

        monkeypatch.setattr(pl, "compute_earliest", flaky)
        result = compile_program(SOURCE, strategy="comb")
        events = [e for e in result.degradations if e.pass_name == "earliest"]
        assert len(events) == 1
        assert events[0].entry_id is not None
        assert events[0].scope.startswith("entry ")
        # Only the faulted entry was pinned; others still hoist.
        pinned = [
            e for e in result.entries if e.earliest_pos == e.latest_pos
        ]
        assert len(pinned) < len(result.entries)
        oracles_accept(result)


class TestChaosILP:
    def test_ilp_mode_clean(self):
        opts = CompilerOptions(placement_search="ilp")
        result = compile_program(SOURCE, strategy="comb", options=opts)
        assert not result.degraded
        oracles_accept(result)

    def test_ilp_fault_falls_back_to_greedy(self, monkeypatch):
        from repro.core import ilp as ilp_mod

        monkeypatch.setattr(ilp_mod, "optimal_placement", _boom(RuntimeError))
        opts = CompilerOptions(placement_search="ilp")
        result = compile_program(SOURCE, strategy="comb", options=opts)
        assert any(e.pass_name == "ilp" for e in result.degradations)
        oracles_accept(result)
        # The fallback is the ordinary greedy schedule.
        baseline = compile_program(SOURCE, strategy="comb")
        assert [pc.position for pc in result.placed] == [
            pc.position for pc in baseline.placed
        ]

    def test_ilp_fault_strict_reraises(self, monkeypatch):
        from repro.core import ilp as ilp_mod

        monkeypatch.setattr(ilp_mod, "optimal_placement", _boom(RuntimeError))
        opts = CompilerOptions(placement_search="ilp", strict=True)
        with pytest.raises(RuntimeError, match="injected chaos"):
            compile_program(SOURCE, strategy="comb", options=opts)


class TestCrashFreeFrontier:
    def test_unexpected_crash_wrapped_as_internal_error(self, monkeypatch):
        """A raw crash outside any fault boundary surfaces as
        InternalCompilerError, never a bare exception."""
        from repro.errors import InternalCompilerError

        def dead_scalarize(*args, **kwargs):
            raise KeyError("compiler bug")

        monkeypatch.setattr(pl, "scalarize", dead_scalarize)
        with pytest.raises(InternalCompilerError, match="KeyError"):
            compile_program(SOURCE)

    def test_strict_lets_raw_crash_propagate(self, monkeypatch):
        def dead_scalarize(*args, **kwargs):
            raise KeyError("compiler bug")

        monkeypatch.setattr(pl, "scalarize", dead_scalarize)
        with pytest.raises(KeyError):
            compile_program(SOURCE, options=CompilerOptions(strict=True))
