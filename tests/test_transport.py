"""Transport-layer suite: backend equivalence, wire accounting,
collective lowering, and the deadlock watchdog.

The three message-passing backends must be invisible optimizations:
for every Figure 10 program under every placement strategy, the final
arrays are bitwise-identical to the legacy direct-copy executor, and
the measured per-pair wire bytes equal the plan-time predictions
exactly (the executor asserts this per operation; these tests
additionally check the cumulative totals against
``CommPlan.pair_bytes``).  A mismatched send/receive schedule must
raise a structured ``DeadlockError`` — never hang, never leak worker
threads or processes.
"""

from __future__ import annotations

import multiprocessing as mp
import threading

import numpy as np
import pytest

from repro.core.pipeline import Strategy, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.spmd import SPMDExecutor, execute_spmd
from repro.transport import (
    BACKENDS,
    DeadlockError,
    InlineTransport,
    TransportError,
    make_transport,
)
from repro.transport.base import combine_pieces
from repro.transport.lowering import (
    lower_comm,
    lower_reduction,
    reduction_tree,
)

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}

#: Distributed → replicated copy on four ranks: classifies as allgather
#: and (P=4 ≥ 3, unmasked, all-rank destinations) lowers to the ring.
ALLGATHER_SRC = """
PROGRAM ag
  PARAM n = 12
  PROCESSORS p(4)
  REAL b(n)
  REAL r(n)
  DISTRIBUTE b(BLOCK) ONTO p
  DO i = 1, 2
    b(1:n) = b(1:n) + 1.0
    r(1:n) = b(1:n)
    b(1:n) = b(1:n) * 0.5 + r(1:n) * 0.25
  END DO
END
"""

#: Diagonal read: pHPF-style augmented exchange whose second phase
#: forwards corner data the first phase delivered.
DIAGONAL_SRC = """
PROGRAM diag
  PARAM n = 8
  PROCESSORS p(2, 2)
  REAL a(n, n)
  REAL b(n, n)
  DISTRIBUTE a(BLOCK, BLOCK) ONTO p
  DISTRIBUTE b(BLOCK, BLOCK) ONTO p
  DO k = 1, 2
    a(2:n, 2:n) = b(1:n-1, 1:n-1)
    b(2:n, 2:n) = a(2:n, 2:n) * 0.5
  END DO
END
"""


def _compile(program: str, strategy: Strategy):
    return compile_program(
        BENCHMARKS[program], params=SMALL[program], strategy=strategy
    )


def _run_transport(result, backend: str):
    executor = SPMDExecutor(result, transport=backend)
    try:
        stats = executor.run()
        state = executor.assemble()
        wire = executor.wire
        plans = list(executor._comm_plans.values())
    finally:
        executor.close()
    return state, stats, wire, plans, executor


# ---------------------------------------------------------------------------
# Equivalence: six programs x three strategies x three backends
# ---------------------------------------------------------------------------


class TestBackendEquivalence:
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_bitwise_identical_and_exact_wire_accounting(
        self, program, strategy, backend
    ):
        result = _compile(program, strategy)
        ref_state, ref_stats = execute_spmd(result)
        state, stats, wire, plans, executor = _run_transport(
            result, backend
        )

        # Bitwise-identical final arrays.
        assert set(state) == set(ref_state)
        for name in ref_state:
            np.testing.assert_array_equal(
                state[name], ref_state[name],
                err_msg=f"{program}/{strategy.value}/{backend}: {name}",
            )

        # Plan-level counters match the legacy executor exactly.
        assert stats.messages == ref_stats.messages
        assert stats.bytes_moved == ref_stats.bytes_moved
        assert stats.reductions == ref_stats.reductions

        # The cumulative wire ledger is internally consistent.
        assert wire.bytes_sent == sum(wire.pair_bytes.values())
        assert wire.messages == sum(wire.pair_msgs.values())

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    def test_per_pair_bytes_match_commplan_exactly(
        self, program, strategy, backend
    ):
        """The property test of the issue: with collectives disabled
        (so the lowering is the plan's own point-to-point shape), the
        transport-measured per-pair byte totals equal the sum of
        ``CommPlan.pair_bytes()`` over every firing, plus the reduction
        receipts — exactly, for all six programs x strategies x
        backends."""
        result = _compile(program, strategy)
        executor = SPMDExecutor(
            result, transport=backend, collectives=False
        )
        expected: dict[tuple[int, int], int] = {}
        plain_exec = executor._execute_plan_transport

        def spying_exec(plan, kind):
            for pair, n in plan.pair_bytes().items():
                expected[pair] = expected.get(pair, 0) + n
            plain_exec(plan, kind)

        executor._execute_plan_transport = spying_exec
        plain_reduce = executor.transport.reduce

        def spying_reduce(pieces, op):
            value, receipt = plain_reduce(pieces, op)
            for pair, n in receipt.pair_bytes.items():
                expected[pair] = expected.get(pair, 0) + n
            return value, receipt

        executor.transport.reduce = spying_reduce
        try:
            executor.run()
            assert executor.wire.pair_bytes == expected
        finally:
            executor.close()


class TestCollectiveEndToEnd:
    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_ring_allgather(self, backend):
        result = compile_program(ALLGATHER_SRC, strategy=Strategy.GLOBAL)
        ref, _ = execute_spmd(result)
        state, _stats, wire, _plans, _ex = _run_transport(result, backend)
        for name in ref:
            np.testing.assert_array_equal(state[name], ref[name])
        assert wire.algorithms.get("ring-allgather", 0) > 0
        # Ring property: traffic only between ring neighbours.
        nranks = 4
        for (src, dst) in wire.pair_bytes:
            assert dst == (src + 1) % nranks

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    def test_augmented_diagonal_exchange(self, backend):
        result = compile_program(DIAGONAL_SRC, strategy=Strategy.GLOBAL)
        ref, _ = execute_spmd(result)
        state, _stats, wire, _plans, _ex = _run_transport(result, backend)
        for name in ref:
            np.testing.assert_array_equal(state[name], ref[name])
        assert wire.algorithms.get("augmented-exchange", 0) > 0

    def test_ring_conserves_bytes_vs_pointwise(self):
        """The ring moves exactly the same total bytes as the direct
        broadcast: each piece travels P-1 hops instead of being sent to
        P-1 destinations."""
        result = compile_program(ALLGATHER_SRC, strategy=Strategy.GLOBAL)
        ring_ex = SPMDExecutor(result, transport="inline")
        flat_ex = SPMDExecutor(
            result, transport="inline", collectives=False
        )
        try:
            ring_ex.run()
            flat_ex.run()
            ring_ag = [
                low for low in ring_ex._lowered.values()
                if low.algorithm == "ring-allgather"
            ]
            flat_ag = [
                low for low in flat_ex._lowered.values()
                if low.algorithm == "pointwise"
                and len(low.rounds) == len(ring_ag[0].rounds) - 2
            ]
            assert ring_ag
            for low in ring_ag:
                # Total bytes equal the pointwise lowering of the same
                # plan (P-1 hops of each piece == P-1 direct copies).
                total = sum(low.predicted_pairs.values())
                per_round = sum(
                    s.nbytes for s in low.rounds[0] if not s.is_local
                )
                assert total == per_round * len(low.rounds)
        finally:
            ring_ex.close()
            flat_ex.close()


# ---------------------------------------------------------------------------
# Lowering units
# ---------------------------------------------------------------------------


class TestReductionLowering:
    @pytest.mark.parametrize("nranks", [1, 2, 3, 4, 5, 8, 13])
    def test_tree_depth_and_coverage(self, nranks):
        rounds = reduction_tree(nranks)
        expected_depth = max(0, (nranks - 1).bit_length())
        assert len(rounds) == expected_depth
        senders = [src for rnd in rounds for src, _ in rnd]
        # Every non-root rank sends exactly once; rank 0 never sends.
        assert sorted(senders) == list(range(1, nranks))

    def test_predictions_account_growing_payloads(self):
        lowered = lower_reduction("SUM", {0: 8, 1: 8, 2: 8, 3: 8}, 4)
        # Gather: (1->0, 3->2) with 8 bytes each, then 2->0 with 16.
        assert lowered.predicted_pairs[(1, 0)] == 8
        assert lowered.predicted_pairs[(3, 2)] == 8
        assert lowered.predicted_pairs[(2, 0)] == 16
        # Broadcast: 8-byte scalar down the reversed edges.
        assert lowered.predicted_pairs[(0, 2)] == 8
        assert lowered.predicted_pairs[(0, 1)] == 8
        assert lowered.predicted_pairs[(2, 3)] == 8

    def test_combine_pieces_is_rank_sorted(self):
        pieces = {
            2: np.array([3.0, 4.0]),
            0: np.array([1.0]),
            1: np.array([2.0]),
        }
        legacy = float(
            np.concatenate([pieces[0], pieces[1], pieces[2]]).sum()
        )
        assert combine_pieces(pieces, "SUM") == legacy
        with pytest.raises(TransportError):
            combine_pieces({}, "SUM")
        with pytest.raises(TransportError):
            combine_pieces({0: np.array([1.0])}, "PROD")

    @pytest.mark.parametrize("backend", sorted(BACKENDS))
    @pytest.mark.parametrize("op", ["SUM", "MAX", "MIN"])
    def test_backend_reduce_bitwise_matches_concat(self, backend, op):
        rng = np.random.default_rng(7)
        pieces = {r: rng.standard_normal(5 + r) for r in range(4)}
        expected = combine_pieces(pieces, op)
        transport = make_transport(backend, 4, watchdog_s=10.0)
        try:
            transport.start({r: {} for r in range(4)})
            value, receipt = transport.reduce(pieces, op)
        finally:
            transport.shutdown()
        assert value == expected
        assert receipt.pair_bytes == lower_reduction(
            op, {r: p.size * 8 for r, p in pieces.items()}, 4
        ).predicted_pairs


# ---------------------------------------------------------------------------
# CommPlan cache scoping (regression)
# ---------------------------------------------------------------------------


class TestPlanCacheGridScope:
    def test_cache_key_includes_grid_shape(self):
        """Cached CommPlans must never be shared across rank-grid
        shapes: the key carries the grid."""
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result)
        try:
            executor.run()
            assert executor._comm_plans
            for key in executor._comm_plans:
                grid_shape = key[0]
                assert grid_shape == executor.grid.shape
        finally:
            executor.close()

    def test_different_grids_produce_disjoint_keys(self):
        keys = {}
        for pr, pc in [(2, 2), (1, 4)]:
            params = dict(SMALL["shallow"], pr=pr, pc=pc)
            result = compile_program(
                BENCHMARKS["shallow"], params=params,
                strategy=Strategy.GLOBAL,
            )
            executor = SPMDExecutor(result)
            executor.run()
            keys[(pr, pc)] = set(executor._comm_plans)
        for key_a in keys[(2, 2)]:
            assert key_a[0] == (2, 2)
        for key_b in keys[(1, 4)]:
            assert key_b[0] == (1, 4)
        assert not (keys[(2, 2)] & keys[(1, 4)])


# ---------------------------------------------------------------------------
# Deadlock watchdog
# ---------------------------------------------------------------------------


def _tampered_scripts(transport, lowered):
    """A genuinely mismatched schedule: drop one rank's first expected
    receive's matching send, so the receiver waits forever."""
    scripts = transport._scripts_for(lowered)
    for rank in sorted(scripts):
        for rnd in scripts[rank]:
            if rnd["send"]:
                victim = rnd["send"][0]
                rnd["send"] = rnd["send"][1:]
                return scripts, victim
    raise AssertionError("no wire sends to tamper with")


class TestDeadlockWatchdog:
    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_mismatched_schedule_raises_structured_deadlock(
        self, backend
    ):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(
            result, transport=backend, watchdog_s=1.5
        )
        transport = executor.transport
        try:
            # Build one real lowered op without running the program:
            # compile the first non-reduction placed op's plan the same
            # way _fire would, then tamper with its schedule.
            ops = [
                op
                for anchor in executor.schedule.anchors
                for op in executor.schedule.ops_at(anchor)
                if op.kind != "reduction"
            ]
            assert ops
            op = ops[0]
            node = executor.result.ctx.node_of(op.position)
            sections = tuple(
                executor._concrete_section(entry, node)
                for entry in op.entries
            )
            plan = executor.planner.compile_op(op, sections)
            lowered = lower_comm(op.kind, plan, len(executor.ranks))
            scripts, victim = _tampered_scripts(transport, lowered)

            with pytest.raises(DeadlockError) as err:
                transport._dispatch(scripts, lowered.algorithm)

            d = err.value.to_dict()
            assert d["error"] == "deadlock"
            assert d["backend"] == backend
            assert d["timeout_s"] == pytest.approx(1.5)
            assert d["stuck"], "diagnostic must name stuck ranks"
            stuck_ranks = {s["rank"] for s in d["stuck"]}
            assert victim.dst in stuck_ranks
            if backend == "threaded":
                # Stack dumps of the stuck workers.
                assert any(
                    "_run_op" in s for s in d["stacks"].values()
                )

            # Poisoned: further operations refuse to run.
            with pytest.raises(TransportError):
                transport.execute(lowered)
        finally:
            executor.close()

        # No zombies: every worker wound down.
        if backend == "threaded":
            assert not [
                t for t in threading.enumerate()
                if t.name.startswith("transport-rank-")
            ]
        else:
            assert not [
                p for p in mp.active_children()
                if p.name.startswith("transport-rank-")
            ]

    def test_watchdog_does_not_fire_on_healthy_runs(self):
        result = _compile("shallow", Strategy.GLOBAL)
        state, _stats, _wire, _plans, _ex = _run_transport(
            result, "threaded"
        )
        ref, _ = execute_spmd(result)
        for name in ref:
            np.testing.assert_array_equal(state[name], ref[name])


# ---------------------------------------------------------------------------
# Lifecycle hygiene
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_shutdown_is_idempotent(self):
        transport = make_transport("multiprocess", 2)
        transport.create_storage([(0, "x", (4,)), (1, "x", (4,))])
        storage = {0: {}, 1: {}}
        transport.start(storage)
        transport.shutdown()
        transport.shutdown()
        assert not [
            p for p in mp.active_children()
            if p.name.startswith("transport-rank-")
        ]

    def test_unknown_backend_rejected(self):
        with pytest.raises(TransportError):
            make_transport("carrier-pigeon", 4)

    def test_none_spec_keeps_legacy_path(self):
        assert make_transport(None, 4) is None

    def test_instance_passthrough(self):
        t = InlineTransport(4)
        assert make_transport(t, 4) is t
