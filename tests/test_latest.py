"""Latest-placement (§4.2) tests: CommLevel and the vectorization point."""

from __future__ import annotations

from repro.core.latest import reaching_regular_defs
from repro.ir.cfg import NodeKind
from conftest import analyzed


def entry_by_label(entries, label_part: str):
    return next(e for e in entries if label_part in e.label)


class TestCommLevel:
    def test_no_deps_hoists_fully(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DO i = 2, n
                a(i) = b(i - 1)
              END DO
            END
            """
        )
        (e,) = entries
        assert e.comm_level == 0
        node = ctx.node_of(e.latest_pos)
        assert node.kind is NodeKind.PREHEADER
        assert node.nl == 0  # preheader of the outermost loop

    def test_time_loop_carried_dep_keeps_comm_inside(self, stencil_source):
        ctx, entries = analyzed(stencil_source)
        for e in entries:
            if e.array != "a":
                continue
            assert e.comm_level == 1
            node = ctx.node_of(e.latest_pos)
            # inside the time loop: the preheader of the scalarized nest
            assert node.nl == 1

    def test_def_before_use_same_level(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              a(:) = 1
              b(2:n) = a(1:n-1)
            END
            """
        )
        (e,) = entries
        assert e.comm_level == 0
        # Hoisted to the preheader of the consuming nest (after the def).
        node = ctx.node_of(e.latest_pos)
        assert node.kind is NodeKind.PREHEADER

    def test_dep_inside_loop_pins_before_statement(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DO i = 2, n
                a(i) = 1
                b(i) = a(i - 1)
              END DO
            END
            """
        )
        (e,) = entries
        # carried dep at level 1 == NL(use): placed right before the use.
        assert e.comm_level == 1
        assert e.latest_pos == ctx.cfg.position_before(e.use.stmt)

    def test_reduction_pinned_to_statement(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              DO k = 1, 4
                s = SUM(a(1:n))
                a(2:n) = s
              END DO
            END
            """
        )
        red = next(e for e in entries if e.is_reduction)
        assert red.latest_pos == ctx.cfg.position_before(red.use.stmt)
        assert red.earliest_pos == red.latest_pos
        assert red.candidates == [red.latest_pos]


class TestReachingDefs:
    def test_all_writers_found_through_phis(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        a_entry = next(e for e in entries if e.array == "a")
        defs = reaching_regular_defs(a_entry.use)
        stmts = {
            str(d.stmt) for d in defs if hasattr(d, "stmt") and d.stmt is not None
        }
        assert any("= 3" in s for s in stmts)  # then-branch write
        assert any("= d(" in s for s in stmts)  # else-branch write

    def test_entry_def_included(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        b_entry = next(e for e in entries if e.array == "b")
        defs = reaching_regular_defs(b_entry.use)
        from repro.ir.ssa import EntryDef

        assert any(isinstance(d, EntryDef) for d in defs)

    def test_chain_does_not_loop_forever(self, stencil_source):
        ctx, entries = analyzed(stencil_source)
        for e in entries:
            defs = reaching_regular_defs(e.use)
            assert len(defs) < 20
