"""Dependence testing validated against a brute-force execution oracle.

The oracle enumerates every dynamic (write, read) instance pair of a
(def statement, use statement) pair in a small program, computes the true
carried levels and loop-independence, and requires the analytical tester
to report a *superset* (conservative soundness).  On the affine cases
below the tester is also exact, which each test asserts.
"""

from __future__ import annotations


from repro.frontend import ast_nodes as ast
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.ir.cfg import CFG
from repro.dependence.tests import DependenceTester, DepResult


def build(source: str):
    program = parse(source)
    info = elaborate(program)
    cfg = CFG(program)
    return info, cfg, DependenceTester(info, cfg)


def _instances(info, program: ast.Program, target: ast.Assign, ref: ast.ArrayRef):
    """All dynamic instances of ``ref`` in ``target``: (time, loop-env,
    element coords)."""
    out = []
    clock = [0]

    def eval_affine(expr, env):
        return info.affine(expr).evaluate(env)

    def walk(body, env):
        for stmt in body:
            if isinstance(stmt, ast.Do):
                lo = eval_affine(stmt.lo, env)
                hi = eval_affine(stmt.hi, env)
                step = eval_affine(stmt.step, env)
                for v in range(lo, hi + 1, step):
                    walk(stmt.body, {**env, stmt.var: v})
            elif isinstance(stmt, ast.Assign):
                clock[0] += 1
                if stmt is target:
                    coords = tuple(
                        eval_affine(sub.expr, env) for sub in ref.subscripts
                    )
                    out.append((clock[0], dict(env), coords))

    walk(program.body, dict(info.params))
    return out


def oracle(info, cfg, def_stmt, def_ref, use_stmt, use_ref) -> DepResult:
    """Ground-truth flow dependence by enumeration."""
    def_node = cfg.node_of_stmt(def_stmt)
    use_node = cfg.node_of_stmt(use_stmt)
    common = cfg.common_loops(def_node, use_node)
    cnl = len(common)
    common_vars = [l.var for l in common]

    writes = _instances(info, cfg.program, def_stmt, def_ref)
    reads = _instances(info, cfg.program, use_stmt, use_ref)

    # For each read, the dependence source is the LAST write of that
    # element before the read (later writes overwrite earlier ones).
    carried: set[int] = set()
    independent = False
    for rtime, renv, rcoords in reads:
        last_write = None
        for wtime, wenv, wcoords in writes:
            if wtime < rtime and wcoords == rcoords:
                if last_write is None or wtime > last_write[0]:
                    last_write = (wtime, wenv)
        if last_write is None:
            continue
        _, wenv = last_write
        wvec = [wenv[v] for v in common_vars]
        rvec = [renv[v] for v in common_vars]
        level = 0
        for i in range(cnl):
            if wvec[i] < rvec[i]:
                level = i + 1
                break
            assert wvec[i] == rvec[i] or wvec[i] > rvec[i]
            if wvec[i] > rvec[i]:
                level = -1  # anti-direction: not a d->u flow at this level
                break
        if level > 0:
            carried.add(level)
        elif level == 0:
            independent = True
    return DepResult(frozenset(carried), independent, cnl)


def first_assign_with(cfg, text: str) -> ast.Assign:
    return next(s for s in cfg.assigns() if text in str(s))


def the_ref(stmt: ast.Assign, array: str) -> ast.ArrayRef:
    if isinstance(stmt.lhs, ast.ArrayRef) and stmt.lhs.name == array:
        return stmt.lhs
    return next(r for r in ast.array_refs(stmt.rhs) if r.name == array)


def run_case(source: str, def_text: str, use_text: str, array: str):
    info, cfg, tester = build(source)
    d = first_assign_with(cfg, def_text)
    u = first_assign_with(cfg, use_text)
    dref = d.lhs if (isinstance(d.lhs, ast.ArrayRef) and d.lhs.name == array) else the_ref(d, array)
    uref = next(r for r in ast.array_refs(u.rhs) if r.name == array)
    got = tester.flow_dependence(d, dref, u, uref)
    want = oracle(info, cfg, d, dref, u, uref)
    # Soundness: everything real must be reported.
    assert want.carried_levels <= got.carried_levels, (want, got)
    assert (not want.loop_independent) or got.loop_independent
    return got, want


class TestOracleCases:
    def test_carried_by_time_loop(self):
        got, want = run_case(
            """PROGRAM t
REAL a(10)
REAL b(10)
DO k = 1, 4
DO i = 2, 9
b(i) = a(i - 1)
END DO
DO i = 2, 9
a(i) = b(i)
END DO
END DO
END""",
            "a(i) = b(i)",
            "b(i) = a((i - 1))",
            "a",
        )
        assert got.carried_levels == want.carried_levels == frozenset({1})
        assert got.loop_independent == want.loop_independent is False

    def test_loop_independent_same_nest(self):
        got, want = run_case(
            """PROGRAM t
REAL a(10)
REAL b(10)
DO i = 1, 10
a(i) = 1
END DO
DO i = 2, 9
b(i) = a(i)
END DO
END""",
            "a(i) = 1",
            "b(i) = a(i)",
            "a",
        )
        assert want.loop_independent and got.loop_independent
        assert got.carried_levels == frozenset()

    def test_disjoint_odd_even_strides(self):
        got, want = run_case(
            """PROGRAM t
REAL a(16)
REAL b(16)
DO i = 1, 8
a(2 * i) = 1
END DO
DO i = 1, 8
b(i) = a(2 * i - 1)
END DO
END""",
            "a((2 * i)) = 1",
            "b(i) = a(((2 * i) - 1))",
            "a",
        )
        assert not want.exists
        assert not got.exists  # GCD test is exact here

    def test_shift_within_single_loop(self):
        got, want = run_case(
            """PROGRAM t
REAL a(12)
DO i = 2, 11
a(i) = a(i - 1) + 1
END DO
END""",
            "a(i) = (a((i - 1)) + 1)",
            "a(i) = (a((i - 1)) + 1)",
            "a",
        )
        assert want.carried_levels == frozenset({1})
        assert got.carried_levels == frozenset({1})
        assert not want.loop_independent and not got.loop_independent

    def test_two_level_nest_outer_carried(self):
        got, want = run_case(
            """PROGRAM t
REAL a(8, 8)
DO i = 2, 7
DO j = 2, 7
a(i, j) = a(i - 1, j) + 1
END DO
END DO
END""",
            "a(i, j) =",
            "a(i, j) =",
            "a",
        )
        assert want.carried_levels == frozenset({1})
        assert got.carried_levels == frozenset({1})

    def test_inner_carried_only(self):
        got, want = run_case(
            """PROGRAM t
REAL a(8, 8)
DO i = 2, 7
DO j = 2, 7
a(i, j) = a(i, j - 1) + 1
END DO
END DO
END""",
            "a(i, j) =",
            "a(i, j) =",
            "a",
        )
        assert want.carried_levels == frozenset({2})
        assert got.carried_levels == frozenset({2})

    def test_no_dependence_between_disjoint_rows(self):
        got, want = run_case(
            """PROGRAM t
REAL a(8, 8)
REAL b(8, 8)
DO i = 1, 8
a(1, i) = 1
END DO
DO i = 1, 8
b(i, 1) = a(2, i)
END DO
END""",
            "a(1, i) = 1",
            "b(i, 1) = a(2, i)",
            "a",
        )
        assert not want.exists
        assert not got.exists

    def test_triangular_loop_conservative(self):
        got, want = run_case(
            """PROGRAM t
REAL a(10)
DO i = 1, 8
DO j = i, 8
a(j) = a(i) + 1
END DO
END DO
END""",
            "a(j) =",
            "a(j) =",
            "a",
        )
        # Oracle gives the truth; the tester may over-approximate but must
        # cover it (asserted in run_case).
        assert want.carried_levels <= got.carried_levels


class TestDepResultSemantics:
    def test_max_level_carried(self):
        r = DepResult(frozenset({1, 2}), False, 3)
        assert r.max_level() == 2

    def test_max_level_independent(self):
        r = DepResult(frozenset(), True, 3)
        assert r.max_level() == 3

    def test_max_level_none(self):
        r = DepResult(frozenset(), False, 2)
        assert r.max_level() == 0
        assert not r.exists

    def test_at_level(self):
        r = DepResult(frozenset({2}), False, 3)
        assert r.at_level(0) and r.at_level(1) and r.at_level(2)
        assert not r.at_level(3)
        assert not r.at_level(4)  # beyond cnl

    def test_at_level_independent(self):
        r = DepResult(frozenset(), True, 2)
        assert r.at_level(2)
        assert not r.at_level(3)


class TestNonAffineFallback:
    def test_unknown_scalar_subscript_is_conservative(self):
        info, cfg, tester = build(
            """PROGRAM t
REAL a(10)
REAL b(10)
REAL k
DO i = 2, 9
a(i) = 1
END DO
DO i = 2, 9
b(i) = a(i)
END DO
END"""
        )
        # Replace the use subscript by an opaque scalar: conservative
        # result expected.
        d = first_assign_with(cfg, "a(i) = 1")
        u = first_assign_with(cfg, "b(i) = a(i)")
        uref = ast.ArrayRef("a", (ast.Index(ast.VarRef("k")),))
        got = tester.flow_dependence(d, d.lhs, u, uref)
        assert got.loop_independent  # must assume the worst
