"""The asyncio compile service: HTTP/JSON-RPC round trips, cache tiers,
coalescing, quotas, backpressure, quarantine, and the access log.

Servers run with ``workers=0`` (in-process thread compiles): tests need
no crash isolation, and ``CompileService._invoke_worker`` is patched per
instance where a test must gate or fail the compile deterministically.
"""

from __future__ import annotations

import asyncio
import io
import json

import pytest

from repro.perf.batch import RetryPolicy
from repro.perf.cache import ScheduleCache, canonical_bytes
from repro.perf.servicebench import Conn
from repro.service.app import (
    CompileRequest,
    CompileService,
    RequestError,
    parse_request,
)
from repro.service.payload import compile_payload
from repro.service.quota import QuotaRegistry, TokenBucket
from repro.service.server import CompileServer

SRC = """PROGRAM svc
PARAM n = 8
PROCESSORS p(2)
REAL a(n)
REAL b(n)
DISTRIBUTE a(BLOCK) ONTO p
DISTRIBUTE b(BLOCK) ONTO p
b(2:n-1) = a(1:n-2)
END PROGRAM
"""

BAD_SRC = "PROGRAM broken\nREAL a(n)\nEND PROGRAM\n"


def run(coro):
    return asyncio.run(coro)


async def _start(**kwargs) -> CompileServer:
    service = CompileService(workers=0, **kwargs.pop("service_kw", {}))
    server = CompileServer(service, port=0, **kwargs)
    await server.start()
    return server


async def _client(server: CompileServer) -> Conn:
    return await Conn("127.0.0.1", server.port).open()


class TestHttpCompile:
    def test_roundtrip_matches_direct_and_hits_cache(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                status, _h, body, _ms = await conn.request(
                    {"source": SRC, "strategy": "comb"}
                )
                assert status == 200 and body["ok"]
                direct = compile_payload(SRC, None, "comb")
                assert canonical_bytes(body["result"]) == canonical_bytes(
                    direct["result"]
                )
                assert body["cache"] is None
                status, _h, body2, _ms = await conn.request(
                    {"source": SRC, "strategy": "comb"}
                )
                assert status == 200 and body2["cache"] == "memory"
                assert canonical_bytes(body2["result"]) == canonical_bytes(
                    direct["result"]
                )
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_disk_tier_across_server_instances(self, tmp_path):
        async def t():
            server = await _start(service_kw={
                "cache": ScheduleCache(cache_dir=tmp_path)
            })
            conn = await _client(server)
            try:
                status, _h, body, _ms = await conn.request({"source": SRC})
                assert status == 200
            finally:
                await conn.close()
                await server.stop()

            server2 = await _start(service_kw={
                "cache": ScheduleCache(cache_dir=tmp_path)
            })
            conn2 = await _client(server2)
            try:
                status, _h, body2, _ms = await conn2.request({"source": SRC})
                assert status == 200 and body2["cache"] == "disk"
                assert canonical_bytes(body2["result"]) == canonical_bytes(
                    body["result"]
                )
            finally:
                await conn2.close()
                await server2.stop()
        run(t())

    def test_program_error_is_422_with_diagnostics(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                status, _h, body, _ms = await conn.request(
                    {"source": BAD_SRC}
                )
                assert status == 422 and not body["ok"]
                assert body["diagnostics"]
                assert body["diagnostics"][0]["severity"] == "error"
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_trace_and_diagnostics_flags(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                _s, _h, lean, _ms = await conn.request({"source": SRC})
                assert "trace" not in lean and "diagnostics" not in lean
                _s, _h, full, _ms = await conn.request(
                    {"source": SRC, "trace": True, "diagnostics": True}
                )
                assert isinstance(full["diagnostics"], list)
                assert full["trace"] and all(
                    "wall_s" in t for t in full["trace"]
                )
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_pipelined_responses_in_request_order(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                for i in range(5):
                    conn.send({
                        "source": SRC,
                        "params": {"n": 8 + 2 * i},
                        "id": i,
                    })
                await conn.writer.drain()
                for i in range(5):
                    status, _h, body, _ms = await conn.read_response()
                    assert status == 200 and body["id"] == i
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_x_tenant_header_fills_tenant(self):
        async def t():
            quotas = QuotaRegistry(tenants={"noisy": (1.0, 1.0)})
            server = await _start(service_kw={"quotas": quotas})
            conn = await _client(server)
            try:
                s1, _h, _b, _ms = await conn.request(
                    {"source": SRC}, headers={"X-Tenant": "noisy"}
                )
                s2, h2, _b, _ms = await conn.request(
                    {"source": SRC}, headers={"X-Tenant": "noisy"}
                )
                assert s1 == 200
                assert s2 == 429 and int(h2["retry-after"]) >= 1
                # other tenants are unlimited
                s3, _h, _b, _ms = await conn.request({"source": SRC})
                assert s3 == 200
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_error_routes(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                s, _h, body, _ms = await conn.request(
                    None, path="/v1/compile"
                )
                assert s == 400  # empty body is not JSON
                s, _h, _b, _ms = await conn.request({"nope": 1})
                assert s == 400  # no source
                s, _h, _b, _ms = await conn.request(
                    {"source": SRC, "strategy": "bogus"}
                )
                assert s == 400
                s, _h, _b, _ms = await conn.request(
                    {"source": SRC, "options": {"bogus_opt": 1}}
                )
                assert s == 400
                s, _h, _b, _ms = await conn.request(
                    None, path="/v1/compile", method="GET"
                )
                assert s == 405
                s, _h, _b, _ms = await conn.request(
                    None, path="/v1/nowhere", method="GET"
                )
                assert s == 404
                s, _h, body, _ms = await conn.request(
                    None, path="/healthz", method="GET"
                )
                assert s == 200 and body["ok"]
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_stats_endpoint(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                await conn.request({"source": SRC})
                s, _h, stats, _ms = await conn.request(
                    None, path="/v1/stats", method="GET"
                )
                assert s == 200
                assert stats["service"]["requests"] == 1
                assert stats["cache"]["misses"] == 1
                assert stats["server"]["requests_total"] == 2
                assert stats["cache_entries"] == 1
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_concurrent_burst_zero_dropped(self):
        async def t():
            server = await _start()
            conns = [await _client(server) for _ in range(8)]
            try:
                direct = {}
                for i in range(64):
                    n = 8 + 2 * (i % 4)
                    if n not in direct:
                        direct[n] = compile_payload(SRC, {"n": n}, "comb")
                    conns[i % 8].send({
                        "source": SRC, "params": {"n": n}, "id": n,
                    })
                for conn in conns:
                    await conn.writer.drain()
                for conn in conns:
                    for _ in range(8):
                        s, _h, body, _ms = await conn.read_response()
                        assert s == 200
                        assert canonical_bytes(
                            body["result"]
                        ) == canonical_bytes(direct[body["id"]]["result"])
                stats = server.service.stats
                assert stats.requests == 64
                assert stats.compiled == len(direct)
            finally:
                for conn in conns:
                    await conn.close()
                await server.stop()
        run(t())

    def test_access_log_is_ndjson(self):
        async def t():
            log = io.StringIO()
            server = await _start(access_log=log)
            conn = await _client(server)
            try:
                await conn.request({"source": SRC})
                await conn.request(None, path="/healthz", method="GET")
                await conn.request(None, path="/v1/nowhere", method="GET")
            finally:
                await conn.close()
                await server.stop()
            lines = [ln for ln in log.getvalue().splitlines() if ln]
            assert len(lines) == 3
            records = [json.loads(ln) for ln in lines]
            assert [r["status"] for r in records] == [200, 200, 404]
            assert all("ts" in r and "path" in r for r in records)
        run(t())


class TestJsonRpc:
    def test_methods(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                _s, _h, body, _ms = await conn.request(
                    {"jsonrpc": "2.0", "method": "ping", "id": 1},
                    path="/rpc",
                )
                assert body == {"jsonrpc": "2.0", "result": "pong", "id": 1}
                _s, _h, body, _ms = await conn.request(
                    {"jsonrpc": "2.0", "method": "compile",
                     "params": {"source": SRC}, "id": 2},
                    path="/rpc",
                )
                assert body["result"]["status"] == 200
                direct = compile_payload(SRC, None, "comb")
                assert canonical_bytes(
                    body["result"]["result"]
                ) == canonical_bytes(direct["result"])
                _s, _h, body, _ms = await conn.request(
                    {"jsonrpc": "2.0", "method": "stats", "id": 3},
                    path="/rpc",
                )
                assert "cache" in body["result"]
            finally:
                await conn.close()
                await server.stop()
        run(t())

    def test_protocol_errors(self):
        async def t():
            server = await _start()
            conn = await _client(server)
            try:
                _s, _h, body, _ms = await conn.request(
                    {"method": "ping"}, path="/rpc"
                )
                assert body["error"]["code"] == -32600
                _s, _h, body, _ms = await conn.request(
                    {"jsonrpc": "2.0", "method": "nope", "id": 9},
                    path="/rpc",
                )
                assert body["error"]["code"] == -32601
                assert body["id"] == 9
                _s, _h, body, _ms = await conn.request(
                    {"jsonrpc": "2.0", "method": "compile",
                     "params": {"strategy": "comb"}, "id": 10},
                    path="/rpc",
                )
                assert body["error"]["code"] == -32602
            finally:
                await conn.close()
                await server.stop()
        run(t())


class TestServiceCore:
    def test_coalescing_n_identical_one_compile(self):
        async def t():
            service = CompileService(workers=0)
            await service.start()
            gate = asyncio.Event()

            async def gated(req: CompileRequest):
                await gate.wait()
                return compile_payload(
                    req.source, req.params, req.strategy, req.options
                )

            service._invoke_worker = gated
            req = CompileRequest(source=SRC)
            tasks = [
                asyncio.ensure_future(service.handle_compile(req))
                for _ in range(8)
            ]
            for _ in range(10):  # let every task reach the future
                await asyncio.sleep(0)
            gate.set()
            responses = await asyncio.gather(*tasks)
            assert service.stats.compiled == 1
            assert service.stats.coalesced == 7
            bodies = {
                canonical_bytes(r.body["result"]) for r in responses
            }
            assert len(bodies) == 1
            assert all(r.status == 200 for r in responses)
            assert sum(1 for r in responses if r.body["coalesced"]) == 7
            await service.close()
        run(t())

    def test_backpressure_sheds_distinct_work_only(self):
        async def t():
            service = CompileService(workers=0, max_pending=1)
            await service.start()
            gate = asyncio.Event()

            async def gated(req: CompileRequest):
                await gate.wait()
                return compile_payload(
                    req.source, req.params, req.strategy, req.options
                )

            service._invoke_worker = gated
            first = asyncio.ensure_future(
                service.handle_compile(CompileRequest(source=SRC))
            )
            for _ in range(5):
                await asyncio.sleep(0)
            # a distinct program is shed with 429 + Retry-After ...
            shed = await service.handle_compile(
                CompileRequest(source=SRC, params={"n": 10})
            )
            assert shed.status == 429
            assert shed.body["error"]["code"] == "backpressure"
            assert "Retry-After" in shed.headers
            # ... but an identical one coalesces (always admitted)
            second = asyncio.ensure_future(
                service.handle_compile(CompileRequest(source=SRC))
            )
            for _ in range(5):
                await asyncio.sleep(0)
            gate.set()
            r1, r2 = await asyncio.gather(first, second)
            assert r1.status == r2.status == 200
            assert service.stats.backpressure_rejected == 1
            await service.close()
        run(t())

    def test_quarantine_after_repeated_timeouts(self):
        async def t():
            service = CompileService(
                workers=0,
                policy=RetryPolicy(timeout=0.05, max_retries=1,
                                   backoff=0.01, quarantine_after=2),
            )
            await service.start()

            async def hang(req: CompileRequest):
                await asyncio.sleep(30)

            service._invoke_worker = hang
            req = CompileRequest(source=SRC)
            response = await service.handle_compile(req)
            assert response.status == 503
            assert response.body["error"]["code"] == "quarantined"
            assert service.stats.timeouts == 2
            assert service.stats.quarantined == 1
            # the key is now answered without touching the pool
            again = await service.handle_compile(req)
            assert again.status == 503
            assert "Retry-After" in again.headers
            await service.close()
        run(t())

    def test_422_cached_in_memory_but_not_durable(self, tmp_path):
        async def t():
            cache = ScheduleCache(cache_dir=tmp_path)
            service = CompileService(workers=0, cache=cache)
            await service.start()
            req = CompileRequest(source=BAD_SRC)
            r1 = await service.handle_compile(req)
            r2 = await service.handle_compile(req)
            assert r1.status == r2.status == 422
            assert r2.body["cache"] == "memory"
            await service.close()
            # a fresh cache over the same dir must NOT see the failure
            fresh = ScheduleCache(cache_dir=tmp_path)
            assert fresh.get(req.key()) is None
        run(t())


class TestParsing:
    def test_parse_request_validation(self):
        with pytest.raises(RequestError):
            parse_request("not a dict")
        with pytest.raises(RequestError):
            parse_request({})
        with pytest.raises(RequestError):
            parse_request({"source": SRC, "params": {"n": "eight"}})
        with pytest.raises(RequestError):
            parse_request({"source": SRC, "strategy": "bogus"})
        with pytest.raises(RequestError):
            parse_request({"source": SRC, "tenant": ""})
        with pytest.raises(RequestError):
            parse_request({"source": SRC, "diagnostics": "yes"})
        req = parse_request({
            "source": SRC,
            "params": {"n": 16},
            "strategy": "nored",
            "options": {"strict": True, "disabled_passes": ["cse"]},
            "tenant": "team-a",
            "trace": True,
            "id": "r-1",
        })
        assert req.strategy == "nored"
        assert req.options.strict is True
        assert req.options.disabled_passes == ("cse",)
        assert req.key()  # hashable into a job key

    def test_token_bucket_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.acquire() == 0.0
        assert bucket.acquire() == 0.0
        wait = bucket.acquire()
        assert wait == pytest.approx(0.5)
        clock[0] += 0.5  # one token refilled
        assert bucket.acquire() == 0.0
