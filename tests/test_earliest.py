"""Earliest-placement (§4.3, Figure 8) tests, including the paper's
Figure 4 expectations and the dominance invariant of Lemma 4.2."""

from __future__ import annotations

from repro.core.earliest import earliest_def
from repro.ir.cfg import NodeKind
from repro.ir.ssa import EntryDef, PhiDef
from conftest import analyzed


class TestFigure4:
    """Paper: Earliest(a1) = Earliest(a2) = stmt 7 (the endif join);
    Earliest(b1) = stmt 1, Earliest(b2) = stmt 2."""

    def _entries(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        a1, b1, a2, b2 = entries  # program order: s16 (a, b), s18 (a, b)
        assert (a1.array, b1.array, a2.array, b2.array) == ("a", "b", "a", "b")
        return ctx, a1, b1, a2, b2

    def test_a_uses_stop_at_join(self, fig4_source):
        ctx, a1, b1, a2, b2 = self._entries(fig4_source)
        for e in (a1, a2):
            d = earliest_def(ctx, e.use)
            assert isinstance(d, PhiDef)
            assert d.kind == "join"
            assert ctx.node_of(e.earliest_pos).kind is NodeKind.JOIN

    def test_b1_stops_after_first_write(self, fig4_source):
        ctx, a1, b1, a2, b2 = self._entries(fig4_source)
        # b1 reads odd columns: hoists above the even-column write (stmt 2)
        # and stops right after the odd-column write's nest.
        n1 = ctx.node_of(b1.earliest_pos)
        n2 = ctx.node_of(b2.earliest_pos)
        assert n1.kind is NodeKind.POSTEXIT
        assert n2.kind is NodeKind.POSTEXIT
        assert ctx.dom.strictly_dominates(n1, n2)

    def test_earliest_dominates_latest_and_use(self, fig4_source):
        ctx, *entries = self._entries(fig4_source)
        for e in entries:
            assert ctx.position_dominates(e.earliest_pos, e.latest_pos)
            use_pos = ctx.cfg.position_before(e.use.stmt)
            assert ctx.position_dominates(e.earliest_pos, use_pos)


class TestWalkBehaviour:
    def test_unwritten_array_hoists_to_entry(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DO i = 2, n
                b(i) = a(i - 1)
              END DO
            END
            """
        )
        (e,) = entries
        d = earliest_def(ctx, e.use)
        assert isinstance(d, EntryDef)
        assert ctx.node_of(e.earliest_pos).kind is NodeKind.ENTRY

    def test_stops_after_dependent_write(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              a(:) = 1
              b(2:n) = a(1:n-1)
            END
            """
        )
        (e,) = entries
        d = earliest_def(ctx, e.use)
        # stops at the φ-exit after the writing nest (post-scalarization the
        # write is a loop, so the version after it is a postexit φ)
        assert isinstance(d, PhiDef) and d.kind == "exit"

    def test_hoists_above_disjoint_write(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n, n)
              REAL b(n, n)
              DISTRIBUTE a(BLOCK, *) ONTO p
              DISTRIBUTE b(BLOCK, *) ONTO p
              a(:, 1) = 1
              a(:, 2) = 2
              DO i = 2, n
                b(i, 3) = a(i - 1, 1)
              END DO
            END
            """
        )
        (e,) = entries
        # The use reads column 1; the column-2 write must be skipped.
        d = earliest_def(ctx, e.use)
        node = ctx.node_of(e.earliest_pos)
        # stops after the column-1 write's nest, strictly above column 2's
        all_postexits = [n for n in ctx.cfg.nodes if n.kind is NodeKind.POSTEXIT]
        assert node is all_postexits[0]

    def test_time_loop_carried_dep_stops_at_header(self, stencil_source):
        ctx, entries = analyzed(stencil_source)
        a_entries = [e for e in entries if e.array == "a"]
        for e in a_entries:
            d = earliest_def(ctx, e.use)
            # a is rewritten each iteration: the merge of the pre-loop and
            # in-loop versions pins the earliest point.
            assert isinstance(d, PhiDef)

    def test_branch_without_relevant_writes_is_transparent(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL c(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              a(:) = 1
              IF s > 0 THEN
                c(1) = 1
              ELSE
                c(2) = 2
              END IF
              b(2:n) = a(1:n-1)
            END
            """
        )
        e = next(e for e in entries if e.array == "a")
        d = earliest_def(ctx, e.use)
        # c's branch writes are irrelevant to a: the walk must hoist above
        # the IF and stop after a's write, not at the join.
        assert not (isinstance(d, PhiDef) and d.kind == "join")

    def test_branch_with_relevant_writes_blocks(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              IF s > 0 THEN
                a(:) = 1
              END IF
              b(2:n) = a(1:n-1)
            END
            """
        )
        (e,) = entries
        d = earliest_def(ctx, e.use)
        assert isinstance(d, PhiDef) and d.kind == "join"

    def test_every_entry_earliest_dominates_use(self, fig4_source):
        for source in (fig4_source,):
            ctx, entries = analyzed(source)
            for e in entries:
                use_pos = ctx.cfg.position_before(e.use.stmt)
                assert ctx.position_dominates(e.earliest_pos, use_pos)
