"""SSA construction tests: φ placement, preserving chains, reaching defs."""

from __future__ import annotations

from repro.frontend.parser import parse
from repro.ir.cfg import CFG, NodeKind
from repro.ir.dominators import DominatorInfo
from repro.ir.ssa import SSA, EntryDef, PhiDef, RegularDef


def build(source: str, tracked=None):
    cfg = CFG(parse(source))
    dom = DominatorInfo(cfg)
    if tracked is None:
        # Track every array/scalar name referenced anywhere, except loop
        # induction variables.
        import repro.frontend.ast_nodes as ast

        tracked = set()
        for stmt in cfg.program.statements():
            if isinstance(stmt, ast.Assign):
                tracked.add(stmt.lhs.name)
                for node in ast.walk_expr(stmt.rhs):
                    if isinstance(node, (ast.VarRef, ast.ArrayRef)):
                        tracked.add(node.name)
    tracked -= {loop.var for loop in cfg.loops}
    return cfg, SSA(cfg, dom, tracked)


SRC_LOOP = """PROGRAM t
REAL a(8)
a(1) = 0
DO i = 1, 8
a(i) = a(i) + 1
END DO
a(2) = a(1)
END"""


class TestPhiPlacement:
    def test_loop_header_and_postexit_phis(self):
        cfg, ssa = build(SRC_LOOP)
        (loop,) = cfg.loops
        header_phis = ssa.phis[loop.header.id]
        postexit_phis = ssa.phis[loop.postexit.id]
        assert [p.var for p in header_phis] == ["a"]
        assert [p.var for p in postexit_phis] == ["a"]
        assert header_phis[0].kind == "enter"
        assert postexit_phis[0].kind == "exit"

    def test_phi_enter_params(self):
        cfg, ssa = build(SRC_LOOP)
        (loop,) = cfg.loops
        (phi,) = ssa.phis[loop.header.id]
        r_pre, r_post = phi.params
        # r_pre: the def before the loop (a(1) = 0).
        assert isinstance(r_pre, RegularDef) and str(r_pre.stmt) == "a(1) = 0"
        # r_post: the def inside the loop body.
        assert isinstance(r_post, RegularDef) and "a(i)" in str(r_post.stmt)

    def test_phi_exit_params(self):
        cfg, ssa = build(SRC_LOOP)
        (loop,) = cfg.loops
        (phi,) = ssa.phis[loop.postexit.id]
        zero_trip, from_loop = phi.params
        assert isinstance(zero_trip, RegularDef)  # the pre-loop def
        assert isinstance(from_loop, PhiDef)  # the header φ via the exit edge
        assert from_loop.kind == "enter"

    def test_join_phi_for_branch(self):
        src = """PROGRAM t
REAL a(8)
REAL s
IF s > 0 THEN
a(1) = 1
ELSE
a(2) = 2
END IF
s = a(3)
END"""
        cfg, ssa = build(src)
        join = next(n for n in cfg.nodes if n.kind is NodeKind.JOIN)
        (phi,) = [p for p in ssa.phis[join.id] if p.var == "a"]
        assert phi.kind == "join"
        assert all(isinstance(p, RegularDef) for p in phi.params)

    def test_no_phi_for_untouched_variable(self):
        src = """PROGRAM t
REAL a(8)
REAL b(8)
b(1) = 1
DO i = 1, 4
a(i) = 0
END DO
END"""
        cfg, ssa = build(src)
        (loop,) = cfg.loops
        assert [p.var for p in ssa.phis[loop.header.id]] == ["a"]


class TestDefsAndUses:
    def test_entry_def_per_variable(self):
        cfg, ssa = build(SRC_LOOP)
        assert set(ssa.entry_defs) == {"a"}
        assert isinstance(ssa.entry_defs["a"], EntryDef)

    def test_array_defs_preserving_with_prev(self):
        cfg, ssa = build(SRC_LOOP)
        for defs in ssa.defs_of_stmt.values():
            for d in defs:
                assert d.preserving
                assert d.prev is not None

    def test_scalar_defs_not_preserving(self):
        cfg, ssa = build("PROGRAM t\nREAL s\ns = 1\ns = 2\nEND")
        all_defs = [d for ds in ssa.defs_of_stmt.values() for d in ds]
        assert all(not d.preserving for d in all_defs)

    def test_use_reaches_nearest_dominating_def(self):
        cfg, ssa = build(SRC_LOOP)
        last = list(cfg.assigns())[-1]  # a(2) = a(1)
        use = next(u for u in ssa.uses if u.stmt is last)
        assert isinstance(use.reaching, PhiDef)
        assert use.reaching.kind == "exit"

    def test_use_in_loop_reaches_header_phi(self):
        cfg, ssa = build(SRC_LOOP)
        body_stmt = next(s for s in cfg.assigns() if "+ 1" in str(s))
        use = next(u for u in ssa.uses if u.stmt is body_stmt)
        assert isinstance(use.reaching, PhiDef)
        assert use.reaching.kind == "enter"

    def test_use_after_def_in_same_block(self):
        cfg, ssa = build("PROGRAM t\nREAL a(4)\na(1) = 0\na(2) = a(1)\nEND")
        use = next(u for u in ssa.uses)
        assert isinstance(use.reaching, RegularDef)
        assert str(use.reaching.stmt) == "a(1) = 0"

    def test_reduction_use_flag(self):
        cfg, ssa = build(
            "PROGRAM t\nREAL a(8)\nREAL s\ns = SUM(a(1:8))\nEND"
        )
        use = next(u for u in ssa.uses if u.var == "a")
        assert use.in_reduction

    def test_lhs_subscript_reads_are_uses(self):
        cfg, ssa = build("PROGRAM t\nREAL a(8)\nREAL k\na(1) = 2\nk = 1\nEND")
        # no subscript var use here, but the machinery must not crash; now
        # with an actual subscript scalar:
        cfg, ssa = build("PROGRAM t\nREAL a(8)\nREAL k\nk = 1\nEND")
        assert all(u.var != "a" for u in ssa.uses)

    def test_versions_unique_per_variable(self):
        cfg, ssa = build(SRC_LOOP)
        versions = [
            (d.var, d.version) for d in ssa.all_defs()
        ]
        assert len(versions) == len(set(versions))

    def test_use_of_lookup(self):
        cfg, ssa = build(SRC_LOOP)
        body_stmt = next(s for s in cfg.assigns() if "+ 1" in str(s))
        import repro.frontend.ast_nodes as ast

        ref = next(ast.array_refs(body_stmt.rhs))
        use = ssa.use_of(body_stmt, ref)
        assert use.ref is ref

    def test_dump_nonempty(self):
        cfg, ssa = build(SRC_LOOP)
        assert "φ" in ssa.dump()
