"""Combining-compatibility properties: symmetry, threshold behaviour,
and the union-descriptor growth rule."""

from __future__ import annotations

import itertools

from hypothesis import given
from hypothesis import strategies as st

from repro.affine import Affine
from repro.comm.compatibility import sections_combinable
from repro.comm.patterns import ShiftMapping, mappings_combinable
from repro.core.greedy import _combinable_at
from repro.sections.symbolic import SymDim, SymSection
from conftest import analyzed


def const_section(array: str, *spans: tuple[int, int, int]) -> SymSection:
    dims = tuple(
        SymDim(Affine.constant(lo), Affine.constant(hi), step)
        for lo, hi, step in spans
    )
    return SymSection(array, dims)


class TestSectionsCombinable:
    def test_same_array_adjacent(self):
        a = const_section("x", (1, 8, 1))
        b = const_section("x", (9, 16, 1))
        assert sections_combinable(a, b, 8, 8, 0.25, 16)

    def test_same_array_distant_blowup_rejected(self):
        a = const_section("x", (1, 2, 1))
        b = const_section("x", (900, 901, 1))
        assert not sections_combinable(a, b, 2, 2, 0.25, 16)

    def test_different_arrays_same_shape(self):
        a = const_section("x", (1, 8, 1))
        b = const_section("y", (3, 10, 1))
        assert sections_combinable(a, b, 8, 8, 0.25, 16)

    def test_different_arrays_shape_mismatch(self):
        a = const_section("x", (1, 8, 1))
        b = const_section("y", (1, 9, 1))
        assert not sections_combinable(a, b, 8, 9, 0.25, 16)

    def test_different_arrays_stride_mismatch(self):
        a = const_section("x", (1, 15, 2))
        b = const_section("y", (1, 15, 1))
        assert not sections_combinable(a, b, 8, 15, 0.25, 16)

    def test_incomparable_symbolic_bounds_rejected(self):
        a = SymSection("x", (SymDim(Affine.symbol("i"), Affine.symbol("i")),))
        b = SymSection("x", (SymDim(Affine.symbol("j"), Affine.symbol("j")),))
        assert not sections_combinable(a, b, 1, 1, 0.25, 16)

    @given(
        lo1=st.integers(1, 30), n1=st.integers(1, 10),
        lo2=st.integers(1, 30), n2=st.integers(1, 10),
    )
    def test_symmetry_same_array(self, lo1, n1, lo2, n2):
        a = const_section("x", (lo1, lo1 + n1 - 1, 1))
        b = const_section("x", (lo2, lo2 + n2 - 1, 1))
        assert sections_combinable(a, b, n1, n2, 0.25, 16) == sections_combinable(
            b, a, n2, n1, 0.25, 16
        )


class TestEntriesCombinableSymmetry:
    SRC = """
    PROGRAM sym
      PARAM n = 16
      PROCESSORS p(4)
      REAL a(n)
      REAL b(n)
      REAL c(n)
      REAL d(n)
      REAL e(n)
      DISTRIBUTE a(BLOCK) ONTO p
      DISTRIBUTE b(BLOCK) ONTO p
      DISTRIBUTE c(BLOCK) ONTO p
      DISTRIBUTE d(BLOCK) ONTO p
      DISTRIBUTE e(BLOCK) ONTO p
      c(2:n) = a(1:n-1) + b(1:n-1)
      d(2:n-1) = a(1:n-2) + a(3:n)
      e(3:n) = b(1:n-2)
    END
    """

    def test_pairwise_symmetry_at_shared_positions(self):
        ctx, entries = analyzed(self.SRC)
        for x, y in itertools.combinations(entries, 2):
            shared = x.candidate_set() & y.candidate_set()
            for pos in list(shared)[:3]:
                assert _combinable_at(ctx, x, y, pos) == _combinable_at(
                    ctx, y, x, pos
                ), (x.label, y.label, pos)

    def test_self_combinable(self):
        ctx, entries = analyzed(self.SRC)
        for e in entries:
            assert _combinable_at(ctx, e, e, e.candidates[-1])


class TestMappingCombinability:
    def test_reflexive(self):
        m = ShiftMapping(("p", (4,)), (1,))
        assert mappings_combinable(m, m)

    def test_symmetric(self):
        a = ShiftMapping(("p", (4,)), (1,))
        b = ShiftMapping(("p", (4,)), (-1,))
        assert mappings_combinable(a, b) == mappings_combinable(b, a)

    def test_multi_hop_distinct_from_single(self):
        a = ShiftMapping(("p", (4,)), (1,))
        b = ShiftMapping(("p", (4,)), (2,))
        assert not mappings_combinable(a, b)
