"""Unparser tests: round-tripping through the parser preserves structure."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast_nodes as ast
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.printer import unparse
from repro.frontend.scalarizer import scalarize
from repro.evaluation.programs import BENCHMARKS


def structurally_equal(a: ast.Program, b: ast.Program) -> bool:
    """Compare two programs by their printed forms — the printer is
    deterministic, so equality of prints means equality of structure."""
    return unparse(a) == unparse(b)


class TestRoundTrip:
    @pytest.mark.parametrize("name", sorted(BENCHMARKS))
    def test_benchmarks_round_trip(self, name):
        original = parse(BENCHMARKS[name])
        text = unparse(original)
        reparsed = parse(text)
        assert structurally_equal(original, reparsed)

    def test_fig4_round_trip(self, fig4_source):
        original = parse(fig4_source)
        assert structurally_equal(original, parse(unparse(original)))

    def test_scalarized_programs_print_and_reparse(self, fig4_source):
        program = parse(fig4_source)
        info = elaborate(program)
        sprog = scalarize(program, info)
        reparsed = parse(unparse(sprog))
        assert structurally_equal(sprog, reparsed)
        # and the reparsed version still elaborates
        elaborate(reparsed)

    def test_declarations_covered(self):
        src = """PROGRAM d
PARAM n = 8
PROCESSORS p(2, 2)
TEMPLATE t(n, n)
DISTRIBUTE t(BLOCK, CYCLIC) ONTO p
REAL a(n, n) ALIGN WITH t
INTEGER k
END"""
        program = parse(src)
        text = unparse(program)
        for token in ("PARAM", "PROCESSORS", "TEMPLATE", "DISTRIBUTE",
                      "ALIGN", "REAL", "INTEGER", "CYCLIC"):
            assert token in text
        assert structurally_equal(program, parse(text))

    def test_expressions_covered(self):
        src = """PROGRAM e
PARAM n = 8
REAL a(n)
REAL s
s = -1 + 2 * 3 / 4
s = SQRT(ABS(s))
s = SUM(a(1:n:2)) + MAXVAL(a(:)) + MINVAL(a(2:))
IF s > 0 AND NOT s == 3 THEN
a(1) = MOD(2, 3)
END IF
END"""
        program = parse(src)
        assert structurally_equal(program, parse(unparse(program)))


@st.composite
def small_program(draw):
    n = 10
    lines = ["PROGRAM h", f"PARAM n = {n}", "REAL a(n)", "REAL b(n)", "REAL s"]
    for _ in range(draw(st.integers(1, 4))):
        kind = draw(st.sampled_from(["assign", "loop", "if"]))
        if kind == "assign":
            lo = draw(st.integers(1, 3))
            hi = draw(st.integers(5, 8))
            step = draw(st.sampled_from([1, 2]))
            lines.append(f"a({lo}:{hi}:{step}) = b({lo}:{hi}:{step}) + 1")
        elif kind == "loop":
            lines.append("DO i = 1, 5")
            lines.append("b(i) = a(i) * 2")
            lines.append("END DO")
        else:
            lines.append("IF s > 0 THEN")
            lines.append("s = s - 1")
            lines.append("ELSE")
            lines.append("s = s + 1")
            lines.append("END IF")
    lines.append("END")
    return "\n".join(lines)


class TestPropertyRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(source=small_program())
    def test_fixed_point(self, source):
        """print(parse(print(parse(s)))) == print(parse(s)): the printer
        reaches a fixed point after one round."""
        once = unparse(parse(source))
        twice = unparse(parse(once))
        assert once == twice
