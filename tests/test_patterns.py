"""Communication pattern classification tests."""

from __future__ import annotations


from repro.comm.patterns import (
    AllGatherMapping,
    GeneralMapping,
    ReductionMapping,
    ShiftMapping,
    mapping_subsumes,
    mappings_combinable,
)
from conftest import compile_to_context


def classify_uses(source: str, params=None):
    ctx = compile_to_context(source, params)
    distributed = {n for n in ctx.info.layouts if ctx.info.is_distributed(n)}
    out = []
    for use in ctx.ssa.array_uses(distributed):
        pattern = ctx.classifier.classify(use)
        out.append((use, pattern))
    return ctx, out


BASE_DECLS = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(2, 2)
  TEMPLATE tm(n, n)
  DISTRIBUTE tm(BLOCK, BLOCK) ONTO p
  REAL a(n, n) ALIGN WITH tm
  REAL b(n, n) ALIGN WITH tm
  REAL r(n, n)
  REAL s
"""


class TestShiftClassification:
    def test_aligned_access_no_comm(self):
        _, uses = classify_uses(BASE_DECLS + "a(2:n, 2:n) = b(2:n, 2:n)\nEND")
        patterns = [p for _, p in uses]
        assert patterns == [None]

    def test_axis0_shift(self):
        _, uses = classify_uses(BASE_DECLS + "a(2:n, 2:n) = b(1:n-1, 2:n)\nEND")
        (_, pattern), = uses
        assert pattern.kind == "shift"
        assert pattern.mapping.proc_shifts == (-1, 0)
        assert pattern.mapping.is_nnc

    def test_axis1_shift(self):
        _, uses = classify_uses(BASE_DECLS + "a(2:n, 2:n-1) = b(2:n, 3:n)\nEND")
        (_, pattern), = uses
        assert pattern.mapping.proc_shifts == (0, 1)

    def test_diagonal_shift(self):
        _, uses = classify_uses(
            BASE_DECLS + "a(2:n-1, 2:n-1) = b(3:n, 3:n)\nEND"
        )
        (_, pattern), = uses
        assert pattern.mapping.proc_shifts == (1, 1)

    def test_large_offset_multi_hop(self):
        # offset 9 with block size 8 -> two processor hops (not NNC)
        _, uses = classify_uses(
            BASE_DECLS + "a(1:n-9, :) = b(10:n, :)\nEND"
        )
        (_, pattern), = uses
        assert pattern.mapping.proc_shifts == (2, 0)
        assert not pattern.mapping.is_nnc

    def test_elem_shifts_recorded(self):
        _, uses = classify_uses(BASE_DECLS + "a(2:n, 2:n) = b(1:n-1, 2:n)\nEND")
        (_, pattern), = uses
        assert pattern.elem_shifts == ((0, -1),)

    def test_replicated_rhs_no_comm(self):
        _, uses = classify_uses(BASE_DECLS + "a(2:n, 2:n) = r(1:n-1, 2:n)\nEND")
        assert uses == []  # r is not distributed, not even a tracked use

    def test_scalar_lhs_allgather(self):
        _, uses = classify_uses(BASE_DECLS + "s = b(3, 3)\nEND")
        (_, pattern), = uses
        assert pattern.kind == "allgather"
        assert isinstance(pattern.mapping, AllGatherMapping)

    def test_replicated_lhs_allgather(self):
        _, uses = classify_uses(BASE_DECLS + "r(2:n, 2:n) = b(2:n, 2:n)\nEND")
        (_, pattern), = uses
        assert pattern.kind == "allgather"

    def test_transpose_is_general(self):
        src = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(2, 2)
  REAL a(n, n)
  REAL b(n, n)
  DISTRIBUTE a(BLOCK, BLOCK) ONTO p
  DISTRIBUTE b(BLOCK, BLOCK) ONTO p
  DO i = 1, n
    DO j = 1, n
      a(i, j) = b(j, i)
    END DO
  END DO
END"""
        _, uses = classify_uses(src)
        (_, pattern), = uses
        assert pattern.kind == "general"
        assert isinstance(pattern.mapping, GeneralMapping)

    def test_cross_grid_is_general(self):
        src = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(4)
  PROCESSORS q(4)
  REAL a(n)
  REAL b(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO q
  a(2:n) = b(1:n-1)
END"""
        _, uses = classify_uses(src)
        (_, pattern), = uses
        assert pattern.kind == "general"

    def test_cyclic_shift(self):
        src = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(4)
  REAL a(n)
  REAL b(n)
  DISTRIBUTE a(CYCLIC) ONTO p
  DISTRIBUTE b(CYCLIC) ONTO p
  a(2:n) = b(1:n-1)
END"""
        _, uses = classify_uses(src)
        (_, pattern), = uses
        assert pattern.kind == "shift"
        assert pattern.mapping.proc_shifts == (-1,)


class TestReductionClassification:
    def test_sum_over_distributed_dim(self):
        _, uses = classify_uses(BASE_DECLS + "s = SUM(b(3, 1:n))\nEND")
        (_, pattern), = uses
        assert pattern.kind == "reduction"
        assert pattern.mapping.op == "SUM"
        assert pattern.mapping.axes == (1,)

    def test_sum_over_both_dims(self):
        _, uses = classify_uses(BASE_DECLS + "s = SUM(b(1:n, 1:n))\nEND")
        (_, pattern), = uses
        assert pattern.mapping.axes == (0, 1)

    def test_sum_over_collapsed_dim_is_local(self):
        src = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(4)
  REAL g(n, n)
  REAL s
  DISTRIBUTE g(BLOCK, *) ONTO p
  s = SUM(g(3, 1:n))
END"""
        _, uses = classify_uses(src)
        (_, pattern), = uses
        assert pattern is None

    def test_maxval_op_recorded(self):
        _, uses = classify_uses(BASE_DECLS + "s = MAXVAL(b(3, 1:n))\nEND")
        (_, pattern), = uses
        assert pattern.mapping.op == "MAX"


class TestMappingRelations:
    def test_equal_shifts_combinable(self):
        g = ("p", (2, 2))
        assert mappings_combinable(ShiftMapping(g, (1, 0)), ShiftMapping(g, (1, 0)))

    def test_different_direction_not_combinable(self):
        g = ("p", (2, 2))
        assert not mappings_combinable(
            ShiftMapping(g, (1, 0)), ShiftMapping(g, (0, 1))
        )

    def test_different_grid_not_combinable(self):
        assert not mappings_combinable(
            ShiftMapping(("p", (2, 2)), (1, 0)),
            ShiftMapping(("q", (4,)), (1,)),
        )

    def test_shift_vs_reduction_not_combinable(self):
        g = ("p", (2, 2))
        assert not mappings_combinable(
            ShiftMapping(g, (1, 0)), ReductionMapping(g, (0,), "SUM")
        )

    def test_reductions_same_axes_combinable(self):
        g = ("p", (2, 2))
        assert mappings_combinable(
            ReductionMapping(g, (1,), "SUM"), ReductionMapping(g, (1,), "SUM")
        )

    def test_reductions_different_op_not_combinable(self):
        g = ("p", (2, 2))
        assert not mappings_combinable(
            ReductionMapping(g, (1,), "SUM"), ReductionMapping(g, (1,), "MAX")
        )

    def test_subsumes_is_equality(self):
        g = ("p", (2, 2))
        assert mapping_subsumes(ShiftMapping(g, (1, 0)), ShiftMapping(g, (1, 0)))
        assert not mapping_subsumes(ShiftMapping(g, (1, 0)), ShiftMapping(g, (-1, 0)))

    def test_shift_partners(self):
        g = ("p", (2, 2))
        assert ShiftMapping(g, (0, 0)).partners == 0
        assert ShiftMapping(g, (1, 1)).partners == 1

    def test_reduction_procs_combined(self):
        assert ReductionMapping(("p", (4, 2)), (0,), "SUM").procs_combined() == 4
        assert ReductionMapping(("p", (4, 2)), (0, 1), "SUM").procs_combined() == 8


class TestConstantSourceMapping:
    """§4.7: mappings to a constant processor position canonicalize by
    the owner coordinate so identical ones can combine."""

    SRC = """
PROGRAM csrc
  PARAM n = 16
  PROCESSORS p(4)
  REAL a(n, n)
  REAL b(n, n)
  REAL c(n, n)
  DISTRIBUTE a(BLOCK, *) ONTO p
  DISTRIBUTE b(BLOCK, *) ONTO p
  DISTRIBUTE c(BLOCK, *) ONTO p
  DO i = 1, n
    DO j = 1, n
      c(i, j) = a(1, j) + b(1, j)
    END DO
  END DO
END"""

    def test_classified_with_owner_coordinate(self):
        _, uses = classify_uses(self.SRC)
        for _, pattern in uses:
            assert pattern.kind == "general"
            assert "const-src:axis0@0" in pattern.mapping.signature

    def test_identical_sources_combine(self):
        from repro.core.pipeline import compile_program

        result = compile_program(self.SRC, strategy="comb")
        assert result.call_sites() == 1  # a-row and b-row fetched together

    def test_different_sources_do_not_combine(self):
        src = self.SRC.replace("b(1, j)", "b(n, j)")
        from repro.core.pipeline import compile_program

        result = compile_program(src, strategy="comb")
        assert result.call_sites() == 2

    def test_spmd_validates(self):
        from repro.core.pipeline import compile_program
        from repro.runtime.spmd import execute_spmd
        from repro.runtime.interp import interpret
        import numpy as np

        result = compile_program(self.SRC, strategy="comb")
        state, _ = execute_spmd(result)
        ref = interpret(result.info)
        for name in ref:
            np.testing.assert_array_equal(state[name], ref[name])
