"""Subset elimination (§4.5) and global redundancy elimination (§4.6)."""

from __future__ import annotations

from repro.core.redundancy import (
    coverage_positions,
    redundancy_eliminate,
    subsumes_at,
)
from repro.core.state import PlacementState
from repro.core.subset import subset_eliminate
from conftest import analyzed


def state_for(source: str, params=None):
    ctx, entries = analyzed(source, params)
    return ctx, entries, PlacementState(ctx, entries)


class TestCommSetMachinery:
    def test_comm_set_contents(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        latest = entries[0].latest_pos  # pre(i): all four entries share it
        assert state.comm_set(latest) == {e.id for e in entries}

    def test_deactivate(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        e = entries[0]
        pos = e.candidates[0]
        state.deactivate(e, pos)
        assert pos not in state.stmt_set(e)

    def test_deactivate_dominated_keeps_prefix(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        e = entries[2]  # a2: several candidates
        mid = e.candidates[len(e.candidates) // 2]
        state.deactivate_dominated(e, mid)
        for p in state.stmt_set(e):
            assert not ctx.position_dominates(mid, p)

    def test_latest_common_position(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        a2 = entries[2]
        b2 = entries[3]
        pos = state.latest_common_position([a2, b2], [])
        common = a2.candidate_set() & b2.candidate_set()
        assert pos in common
        for p in common:
            assert ctx.position_dominates(p, pos)


class TestSubsetElimination:
    def test_proper_subsets_emptied(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        emptied = subset_eliminate(ctx, state)
        assert emptied > 0
        # No position's CommSet is a proper subset of another's afterwards.
        sets = {
            p: frozenset(state.comm_set(p))
            for p in state.all_positions()
            if state.comm_set(p)
        }
        for p1, s1 in sets.items():
            for p2, s2 in sets.items():
                if p1 != p2:
                    assert not (s1 < s2)

    def test_no_entry_loses_all_positions(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        subset_eliminate(ctx, state)
        for e in entries:
            assert state.stmt_set(e)

    def test_equal_sets_keep_latest(self, stencil_source):
        ctx, entries, state = state_for(stencil_source)
        subset_eliminate(ctx, state)
        sets = {
            p: frozenset(state.comm_set(p))
            for p in state.all_positions()
            if state.comm_set(p)
        }
        for p1, s1 in sets.items():
            for p2, s2 in sets.items():
                if p1 != p2 and s1 == s2:
                    raise AssertionError("duplicate CommSets survived")


class TestRedundancyElimination:
    def test_fig4_eliminates_subsumed_pair(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        subset_eliminate(ctx, state)
        eliminated = redundancy_eliminate(ctx, state)
        assert eliminated == 2
        a1, b1, a2, b2 = entries
        assert not a1.alive and not b1.alive
        assert a1.eliminated_by is a2 and b1.eliminated_by is b2
        assert a1 in a2.absorbed and b1 in b2.absorbed

    def test_subsumes_at_respects_sections(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        a1, b1, a2, b2 = entries
        pos = a2.latest_pos
        assert subsumes_at(ctx, a2, a1, pos)  # all columns covers odd
        assert not subsumes_at(ctx, a1, a2, pos)  # odd does not cover all
        assert not subsumes_at(ctx, a2, b1, pos)  # different arrays never

    def test_subsumes_never_self(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        for e in entries:
            assert not subsumes_at(ctx, e, e, e.latest_pos)

    def test_coverage_positions_nonempty_for_fig4(self, fig4_source):
        ctx, entries, state = state_for(fig4_source)
        a1, b1, a2, b2 = entries
        cov = coverage_positions(ctx, a2, a1)
        assert cov
        assert cov <= (a1.candidate_set() & a2.candidate_set())

    def test_identical_uses_deduplicate(self):
        ctx, entries, state = state_for(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL c(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DISTRIBUTE c(BLOCK) ONTO p
              b(2:n) = a(1:n-1)
              c(2:n) = a(1:n-1)
            END
            """
        )
        assert len(entries) == 2
        subset_eliminate(ctx, state)
        killed = redundancy_eliminate(ctx, state)
        assert killed == 1
        assert sum(1 for e in entries if e.alive) == 1

    def test_different_shifts_not_redundant(self):
        ctx, entries, state = state_for(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              b(2:n-1) = a(1:n-2) + a(3:n)
            END
            """
        )
        subset_eliminate(ctx, state)
        assert redundancy_eliminate(ctx, state) == 0
        assert all(e.alive for e in entries)

    def test_transitive_absorption(self):
        # three identical uses: one survivor absorbs both others.
        ctx, entries, state = state_for(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL c(n)
              REAL d(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DISTRIBUTE c(BLOCK) ONTO p
              DISTRIBUTE d(BLOCK) ONTO p
              b(2:n) = a(1:n-1)
              c(2:n) = a(1:n-1)
              d(2:n) = a(1:n-1)
            END
            """
        )
        subset_eliminate(ctx, state)
        assert redundancy_eliminate(ctx, state) == 2
        survivors = [e for e in entries if e.alive]
        assert len(survivors) == 1
        assert len(survivors[0].absorbed) == 2
        # absorbed entries must point at the live winner, not at each other
        for victim in survivors[0].absorbed:
            assert victim.eliminated_by is survivors[0]
