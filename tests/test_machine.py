"""Machine model tests: Figure 5 curve shapes and cost-model sanity."""

from __future__ import annotations

import pytest

from repro.evaluation.fig5_profile import profile_machine, run_all, size_axis
from repro.machine.model import MACHINES, NOW, SP2


class TestPointToPoint:
    def test_message_time_affine_in_size(self):
        t0 = SP2.message_time(0)
        t1 = SP2.message_time(34_000_000)
        assert t0 == pytest.approx(SP2.startup_s)
        assert t1 == pytest.approx(SP2.startup_s + 1.0)

    def test_bandwidth_monotone_in_size(self):
        sizes = size_axis()
        for machine in MACHINES.values():
            bws = [machine.network_bandwidth(s) for s in sizes]
            assert all(a <= b for a, b in zip(bws, bws[1:]))

    def test_bandwidth_saturates_at_asymptote(self):
        for machine in MACHINES.values():
            bw = machine.network_bandwidth(64 * 1024 * 1024)
            assert bw == pytest.approx(machine.bandwidth_bps, rel=0.05)

    def test_injection_faster_than_receive(self):
        for machine in MACHINES.values():
            for s in size_axis():
                assert machine.injection_time(s) <= machine.message_time(s)

    def test_zero_size_bandwidth(self):
        assert SP2.network_bandwidth(0) == 0.0
        assert SP2.bcopy_bandwidth(0) == 0.0


class TestBcopyKnee:
    def test_in_cache_rate(self):
        t = SP2.bcopy_time(1024)
        assert t == pytest.approx(1024 / SP2.bcopy_cache_bps)

    def test_beyond_cache_blends(self):
        n = SP2.cache_bytes * 4
        t = SP2.bcopy_time(n)
        expected = (
            SP2.cache_bytes / SP2.bcopy_cache_bps
            + (n - SP2.cache_bytes) / SP2.bcopy_mem_bps
        )
        assert t == pytest.approx(expected)

    def test_bcopy_bandwidth_drops_past_cache(self):
        small = SP2.bcopy_bandwidth(SP2.cache_bytes // 2)
        large = SP2.bcopy_bandwidth(SP2.cache_bytes * 16)
        assert large < small

    def test_bcopy_dominates_network_in_cache(self):
        """The paper: 'As long as the buffers fit in cache, we can ignore
        the overhead of bcopy' — bcopy must be much faster than the net."""
        for machine in MACHINES.values():
            s = machine.cache_bytes // 2
            assert machine.bcopy_bandwidth(s) > 2 * machine.network_bandwidth(s)


class TestCollectives:
    def test_reduce_scaling(self):
        assert SP2.reduce_time(8, 1) == 0.0
        assert SP2.reduce_time(8, 2) < SP2.reduce_time(8, 16)

    def test_allreduce_twice_reduce(self):
        assert SP2.allreduce_time(8, 16) == pytest.approx(
            2 * SP2.reduce_time(8, 16)
        )

    def test_allgather_rounds(self):
        t = SP2.allgather_time(8000, 4)
        assert t == pytest.approx(3 * SP2.message_time(2000))


class TestPlatformContrast:
    def test_sp2_has_lower_overhead_higher_bandwidth(self):
        """Paper §5: 'the SP2 network has lower overhead and higher
        bandwidth than the NOW'."""
        assert SP2.startup_s < NOW.startup_s
        assert SP2.bandwidth_bps > NOW.bandwidth_bps
        assert SP2.sw_overhead_s < NOW.sw_overhead_s


class TestFigure5Profile:
    def test_profiles_for_both_machines(self):
        profiles = run_all()
        assert {p.machine for p in profiles} == {"SP2", "NOW"}

    def test_knee_below_cache_size(self):
        """The paper's key reading of Figure 5: 'most of the message
        startup amortization benefits occur at message sizes much smaller
        than the cache limit, for both machines'."""
        for machine in MACHINES.values():
            profile = profile_machine(machine)
            assert profile.knee(0.8) < machine.cache_bytes

    def test_sp2_knee_near_20kb(self):
        """The basis of the 20 KB combining threshold."""
        knee = profile_machine(SP2).knee(0.8)
        assert 4 * 1024 <= knee <= 32 * 1024

    def test_cache_cliff_matches_model(self):
        for machine in MACHINES.values():
            cliff = profile_machine(machine).cache_cliff()
            assert machine.cache_bytes <= cliff <= 4 * machine.cache_bytes

    def test_formatting(self):
        from repro.evaluation.fig5_profile import format_profile

        text = format_profile(profile_machine(SP2))
        assert "SP2" in text and "knee" in text
