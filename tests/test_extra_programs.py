"""Generality tests on kernels outside the paper's benchmark set.

Each asserts the *placement structure* the algorithm should produce and
validates the schedule with both dynamic oracles.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Strategy, compile_all_strategies, compile_program
from repro.evaluation.extra_programs import EXTRA_PROGRAMS
from repro.machine.model import SP2
from repro.runtime.checker import check_schedule
from repro.runtime.interp import interpret
from repro.runtime.simulator import simulate
from repro.runtime.spmd import execute_spmd


@pytest.mark.parametrize("program", sorted(EXTRA_PROGRAMS))
@pytest.mark.parametrize("strategy", list(Strategy))
def test_all_validate_dynamically(program, strategy):
    result = compile_program(EXTRA_PROGRAMS[program], strategy=strategy)
    check_schedule(result)
    state, _ = execute_spmd(result)
    ref = interpret(result.info)
    for name in ref:
        np.testing.assert_array_equal(state[name], ref[name])


class TestRedBlack:
    def test_eight_exchanges_no_combining_possible(self):
        """Red reads cross the black write (and vice versa): the two
        colour phases cannot share a placement region, and within a phase
        the four directions have distinct mappings — 8 everywhere."""
        for strategy, result in compile_all_strategies(
            EXTRA_PROGRAMS["redblack"]
        ).items():
            assert result.call_sites() == 8, strategy

    def test_strided_colours_exactly_disjoint(self):
        """No redundancy between the red and black reads: the GCD test
        must prove the odd/even strided sections independent."""
        result = compile_program(EXTRA_PROGRAMS["redblack"], strategy="comb")
        assert result.eliminated_entries() == []


class TestPipeline:
    def test_inner_carried_dependence_pins_communication(self):
        """The recurrence a(i,j) = a(i-1,j) + ... carries at the inner
        level: the exchange stays inside both loops (the pipelining worst
        case the paper's related work attacks)."""
        result = compile_program(EXTRA_PROGRAMS["pipeline"], strategy="comb")
        assert result.call_sites() == 1
        (pc,) = result.placed
        node = result.ctx.node_of(pc.position)
        assert node.nl == 2  # inside both loops

    def test_dynamic_message_count_is_per_iteration(self):
        result = compile_program(EXTRA_PROGRAMS["pipeline"], strategy="comb")
        report = simulate(result, SP2)
        n = result.info.params["n"]
        # one message per (j, i) iteration of the nest
        assert report.messages_per_proc == (n - 1) * (n - 1)


class TestMatmul:
    def test_operand_fetch_fully_hoisted(self):
        """b(k, j) is loop-invariant data: one communication hoisted to
        the top of the program, executed once."""
        result = compile_program(EXTRA_PROGRAMS["matmul"], strategy="comb")
        assert result.call_sites() == 1
        (pc,) = result.placed
        assert result.ctx.node_of(pc.position).nl == 0
        report = simulate(result, SP2)
        assert report.comm_ops[0].executions == 1

    def test_unaligned_subscript_classified_general(self):
        result = compile_program(EXTRA_PROGRAMS["matmul"], strategy="comb")
        (pc,) = result.placed
        assert pc.kind == "general"


class TestWavefront:
    def test_diagonal_combines_with_axis_shift(self):
        """w(i-1, j) and w(i-1, j-1) map to the same processor-space
        shift (the column dimension is collapsed): the global algorithm
        merges them into one exchange; the baselines emit two."""
        results = compile_all_strategies(EXTRA_PROGRAMS["wavefront"])
        assert results[Strategy.ORIG].call_sites() == 2
        assert results[Strategy.EARLIEST].call_sites() == 2
        assert results[Strategy.GLOBAL].call_sites() == 1
        (pc,) = results[Strategy.GLOBAL].placed
        assert len(pc.entries) == 2
