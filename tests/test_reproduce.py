"""Tests for the one-shot reproduction driver."""

from __future__ import annotations

from repro.evaluation.reproduce import (
    Reproduction,
    check_dynamic_oracles,
    check_fig5,
    check_fig10_table,
    run_reproduction,
)


class TestReproductionReport:
    def test_record_and_verdict(self):
        repro = Reproduction()
        repro.record("a", True, "fine")
        repro.record("b", True)
        assert repro.ok
        repro.record("c", False, "broke")
        assert not repro.ok

    def test_format_mentions_status(self):
        repro = Reproduction()
        repro.record("alpha", True, "d1")
        repro.record("beta", False, "d2")
        text = repro.format()
        assert "[PASS] alpha" in text
        assert "[FAIL] beta" in text
        assert "SOME CHECKS FAILED (1/2)" in text

    def test_all_passed_banner(self):
        repro = Reproduction()
        repro.record("only", True)
        assert "ALL CHECKS PASSED (1/1)" in repro.format()


class TestChecks:
    def test_fig10_table_checks_pass(self):
        repro = Reproduction()
        check_fig10_table(repro)
        assert len(repro.checks) == 7
        assert repro.ok

    def test_fig5_checks_pass(self):
        repro = Reproduction()
        check_fig5(repro)
        assert len(repro.checks) == 2
        assert repro.ok

    def test_dynamic_oracles_pass(self):
        repro = Reproduction()
        check_dynamic_oracles(repro)
        assert len(repro.checks) == 6
        assert repro.ok

    def test_run_without_charts(self):
        repro = run_reproduction(include_charts=False)
        assert repro.ok
        assert len(repro.checks) == 15  # 7 table + 2 fig5 + 6 dynamic
