"""Tokenizer tests."""

from __future__ import annotations

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize


def kinds(source: str) -> list[str]:
    return [t.kind for t in tokenize(source)]


def texts(source: str) -> list[str]:
    return [t.text for t in tokenize(source) if t.kind not in ("NEWLINE", "EOF")]


class TestBasics:
    def test_empty_input(self):
        toks = tokenize("")
        assert [t.kind for t in toks] == ["EOF"]

    def test_identifiers_fold_to_lowercase(self):
        assert texts("Alpha BETA gamma") == ["alpha", "beta", "gamma"]

    def test_keywords_fold_to_uppercase(self):
        assert kinds("program do end")[:3] == ["PROGRAM", "DO", "END"]

    def test_keywords_case_insensitive(self):
        assert kinds("Do dO DO")[:3] == ["DO", "DO", "DO"]

    def test_numbers_integer(self):
        toks = tokenize("42")
        assert toks[0].kind == "NUMBER" and toks[0].text == "42"

    def test_numbers_float(self):
        assert tokenize("3.25")[0].text == "3.25"

    def test_numbers_exponent(self):
        assert tokenize("1.5e-3")[0].text == "1.5e-3"

    def test_numbers_d_exponent_normalized(self):
        assert tokenize("1.5d3")[0].text == "1.5e3"

    def test_operators(self):
        assert kinds("a <= b")[:3] == ["IDENT", "<=", "IDENT"]
        assert kinds("a /= b")[1] == "/="
        assert kinds("a / b")[1] == "/"

    def test_triplet_colons(self):
        assert kinds("a(1:n:2)")[:8] == [
            "IDENT", "(", "NUMBER", ":", "IDENT", ":", "NUMBER", ")",
        ]


class TestLinesAndComments:
    def test_newline_token_emitted(self):
        assert "NEWLINE" in kinds("a = 1\nb = 2")

    def test_blank_lines_collapse(self):
        ks = kinds("a\n\n\nb")
        assert ks.count("NEWLINE") == 1

    def test_leading_newlines_skipped(self):
        assert kinds("\n\na")[0] == "IDENT"

    def test_comment_to_end_of_line(self):
        assert texts("a ! the rest is comment\nb") == ["a", "b"]

    def test_semicolon_is_statement_separator(self):
        ks = kinds("a = 1; b = 2")
        assert "NEWLINE" in ks

    def test_continuation(self):
        toks = tokenize("a = 1 + &\n    2")
        assert [t.kind for t in toks if t.kind == "NEWLINE"] == []

    def test_continuation_with_comment(self):
        toks = [t.kind for t in tokenize("a = 1 + & ! why not\n 2")]
        assert "NEWLINE" not in toks

    def test_bad_continuation_raises(self):
        with pytest.raises(LexError):
            tokenize("a = 1 & 2")


class TestErrorsAndLocations:
    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a = #")

    def test_location_line_numbers(self):
        toks = tokenize("a\nbb\nccc")
        ids = [t for t in toks if t.kind == "IDENT"]
        assert [t.loc.line for t in ids] == [1, 2, 3]
