"""Dominator computation validated against a brute-force reference."""

from __future__ import annotations

import pytest

from repro.errors import PlacementError
from repro.frontend.parser import parse
from repro.ir.cfg import CFG, Position
from repro.ir.dominators import DominatorInfo


def build(source: str):
    cfg = CFG(parse(source))
    return cfg, DominatorInfo(cfg)


def brute_force_dominators(cfg: CFG) -> dict[int, set[int]]:
    """dom(n) = nodes appearing on every ENTRY→n path, by the classic
    iterative set formulation."""
    all_ids = {n.id for n in cfg.nodes}
    dom = {n.id: set(all_ids) for n in cfg.nodes}
    dom[cfg.entry.id] = {cfg.entry.id}
    changed = True
    while changed:
        changed = False
        for node in cfg.nodes:
            if node is cfg.entry:
                continue
            preds = [dom[p.id] for p in node.preds]
            new = set.intersection(*preds) | {node.id} if preds else {node.id}
            if new != dom[node.id]:
                dom[node.id] = new
                changed = True
    return dom


PROGRAMS = [
    "PROGRAM t\nREAL s\ns = 1\ns = 2\nEND",
    "PROGRAM t\nREAL a(8)\nDO i = 1, 8\na(i) = 1\nEND DO\nEND",
    "PROGRAM t\nREAL s\nIF s > 0 THEN\ns = 1\nELSE\ns = 2\nEND IF\ns = 3\nEND",
    """PROGRAM t
REAL a(8, 8)
REAL s
DO i = 1, 8
IF s > 0 THEN
DO j = 1, 8
a(i, j) = 1
END DO
END IF
s = s + 1
END DO
END""",
    """PROGRAM t
REAL a(8)
DO i = 1, 4
a(i) = 0
END DO
DO i = 1, 4
DO j = 1, 4
a(j) = a(i) + 1
END DO
END DO
END""",
]


class TestAgainstBruteForce:
    @pytest.mark.parametrize("source", PROGRAMS)
    def test_dominance_matches(self, source):
        cfg, dom = build(source)
        reference = brute_force_dominators(cfg)
        for a in cfg.nodes:
            for b in cfg.nodes:
                assert dom.dominates(a, b) == (a.id in reference[b.id]), (
                    f"dominates({a}, {b}) disagrees with brute force"
                )

    @pytest.mark.parametrize("source", PROGRAMS)
    def test_idom_is_closest_strict_dominator(self, source):
        cfg, dom = build(source)
        reference = brute_force_dominators(cfg)
        for node in cfg.nodes:
            if node is cfg.entry:
                continue
            idom = dom.dom_tree_parent(node)
            strict = reference[node.id] - {node.id}
            assert idom.id in strict
            # Every other strict dominator dominates the idom.
            for d in strict:
                assert d in reference[idom.id]


class TestQueries:
    def test_entry_dominates_all(self):
        cfg, dom = build(PROGRAMS[3])
        for node in cfg.nodes:
            assert dom.dominates(cfg.entry, node)

    def test_strict_dominance_irreflexive(self):
        cfg, dom = build(PROGRAMS[1])
        for node in cfg.nodes:
            assert not dom.strictly_dominates(node, node)

    def test_dom_tree_path(self):
        cfg, dom = build(PROGRAMS[1])
        (loop,) = cfg.loops
        path = dom.dom_tree_path(loop.postexit, cfg.entry)
        assert path[0] is loop.postexit
        assert path[-1] is cfg.entry
        # postexit's dominator parent chain skips the loop body entirely.
        assert loop.preheader in path
        assert all(n is not loop.latch for n in path)

    def test_dom_tree_path_requires_dominance(self):
        cfg, dom = build(PROGRAMS[2])
        then_block = next(
            n for n in cfg.nodes if n.stmts and str(n.stmts[0]) == "s = 1"
        )
        else_block = next(
            n for n in cfg.nodes if n.stmts and str(n.stmts[0]) == "s = 2"
        )
        with pytest.raises(PlacementError):
            dom.dom_tree_path(then_block, else_block)

    def test_position_dominance_same_block(self):
        cfg, dom = build("PROGRAM t\nREAL s\ns = 1\ns = 2\nEND")
        stmts = list(cfg.assigns())
        node = cfg.node_of_stmt(stmts[0])
        assert dom.position_dominates(Position(node.id, -1), Position(node.id, 0))
        assert not dom.position_dominates(Position(node.id, 1), Position(node.id, 0))

    def test_position_dominance_across_blocks(self):
        cfg, dom = build(PROGRAMS[1])
        (loop,) = cfg.loops
        pre = Position(loop.preheader.id, -1)
        hdr = Position(loop.header.id, -1)
        assert dom.position_dominates(pre, hdr)
        assert not dom.position_dominates(hdr, pre)

    def test_frontier_of_branch_arms_is_join(self):
        cfg, dom = build(PROGRAMS[2])
        then_block = next(
            n for n in cfg.nodes if n.stmts and str(n.stmts[0]) == "s = 1"
        )
        join = next(n for n in cfg.nodes if n.label == "endif")
        assert join.id in dom.frontier[then_block.id]

    def test_dominator_depth_monotone_on_tree(self):
        cfg, dom = build(PROGRAMS[3])
        for node in cfg.nodes:
            parent = dom.dom_tree_parent(node)
            if parent is not None:
                assert dom.dominator_depth(node) == dom.dominator_depth(parent) + 1
