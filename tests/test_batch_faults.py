"""Crash-safety tests for the batch driver: timeout, retry, quarantine,
and checkpoint/resume.

Worker-fault injection relies on the Linux ``fork`` start method: a
monkeypatched ``repro.perf.batch._compile_job`` in the parent is inherited
by pool workers forked afterwards, so a test can make the *worker side*
crash or hang on demand.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.perf import batch as batch_mod
from repro.perf.batch import (
    BatchCompiler,
    BatchJob,
    RetryPolicy,
    benchmark_jobs,
    job_key,
)

GOOD = """PROGRAM good
PARAM n = 8
PROCESSORS p(2)
REAL a(n)
REAL b(n)
DISTRIBUTE a(BLOCK) ONTO p
DISTRIBUTE b(BLOCK) ONTO p
b(2:n-1) = a(1:n-2)
END PROGRAM
"""


def good_job(name: str = "good") -> BatchJob:
    return BatchJob(name=name, source=GOOD)


# -- worker-side fault injectors ---------------------------------------------
# Pool submission pickles the callable by qualified name, so injectors must
# be module-level functions (a monkeypatched closure is unpicklable).  They
# are installed as ``batch_mod._compile_job`` in the parent; fork-started
# workers inherit the patched module, and the flag-file path in
# ``_FLAG_PATH`` (set before the pool spawns) crosses the fork the same way.

_REAL_COMPILE_JOB = batch_mod._compile_job
_FLAG_PATH = ""


def _crash_on_bad(job, key):
    if job.name == "bad":
        os._exit(17)  # hard worker death: BrokenProcessPool
    return _REAL_COMPILE_JOB(job, key)


def _always_crash(job, key):
    os._exit(17)


def _crash_once(job, key):
    if not os.path.exists(_FLAG_PATH):
        with open(_FLAG_PATH, "w") as fh:
            fh.write("x")
        os._exit(17)
    return _REAL_COMPILE_JOB(job, key)


def _hang_on_slow(job, key):
    if job.name == "slow":
        time.sleep(60)
    return _REAL_COMPILE_JOB(job, key)


class TestCheckpointResume:
    def test_resume_equals_uninterrupted(self, tmp_path):
        jobs = benchmark_jobs(strategies=("orig", "comb"))
        baseline = BatchCompiler().run(jobs)

        ckpt = tmp_path / "batch.json"
        first = BatchCompiler(checkpoint_path=ckpt)
        first.run(jobs[: len(jobs) // 2])  # "killed" partway through

        resumed = BatchCompiler(checkpoint_path=ckpt)
        assert resumed.stats.resumed > 0
        results = resumed.run(jobs)
        assert [(r.name, r.key, r.call_sites, r.entries, r.error)
                for r in results] == [
            (r.name, r.key, r.call_sites, r.entries, r.error)
            for r in baseline
        ]
        # The first half came from the checkpoint, not a recompile.
        assert resumed.stats.cache_hits >= len(jobs) // 2

    def test_kill_mid_run_then_resume(self, tmp_path, monkeypatch):
        """A worker that dies mid-batch (SystemExit escapes the serial
        driver) leaves a valid checkpoint covering the finished prefix."""
        jobs = [
            BatchJob(name=f"j{i}", source=GOOD.replace("n = 8", f"n = {8 + 2 * i}"))
            for i in range(4)
        ]
        ckpt = tmp_path / "batch.json"
        real = batch_mod._compile_job
        calls = {"n": 0}

        def dies_after_two(job, key):
            if calls["n"] >= 2:
                raise SystemExit(9)  # simulated kill -9 mid-run
            calls["n"] += 1
            return real(job, key)

        monkeypatch.setattr(batch_mod, "_compile_job", dies_after_two)
        with pytest.raises(SystemExit):
            BatchCompiler(checkpoint_path=ckpt).run(jobs)

        monkeypatch.setattr(batch_mod, "_compile_job", real)
        resumed = BatchCompiler(checkpoint_path=ckpt)
        assert resumed.stats.resumed == 2
        results = resumed.run(jobs)
        baseline = BatchCompiler().run(jobs)
        assert [(r.name, r.key, r.call_sites, r.error) for r in results] == [
            (r.name, r.key, r.call_sites, r.error) for r in baseline
        ]

    def test_corrupt_checkpoint_starts_fresh(self, tmp_path):
        ckpt = tmp_path / "batch.json"
        ckpt.write_text("{truncated")
        compiler = BatchCompiler(checkpoint_path=ckpt)
        assert compiler.stats.resumed == 0
        (result,) = compiler.run([good_job()])
        assert result.ok

    def test_checkpoint_is_valid_json_after_every_job(self, tmp_path):
        ckpt = tmp_path / "batch.json"
        compiler = BatchCompiler(checkpoint_path=ckpt)
        compiler.run([good_job()])
        payload = json.loads(ckpt.read_text())
        assert len(payload["results"]) == 1
        assert payload["quarantined"] == []

    def test_changed_source_not_served_from_checkpoint(self, tmp_path):
        ckpt = tmp_path / "batch.json"
        BatchCompiler(checkpoint_path=ckpt).run([good_job()])
        changed = BatchJob(name="good", source=GOOD.replace("n = 8", "n = 16"))
        resumed = BatchCompiler(checkpoint_path=ckpt)
        (result,) = resumed.run([changed])
        assert not result.from_cache
        assert resumed.stats.cache_hits == 0


class TestWorkerCrash:
    def test_crashing_worker_quarantined_good_job_survives(self, monkeypatch):
        bad = BatchJob(name="bad", source=GOOD)
        bad_key = job_key(bad)
        monkeypatch.setattr(batch_mod, "_compile_job", _crash_on_bad)
        compiler = BatchCompiler(
            workers=2,
            policy=RetryPolicy(backoff=0.0, max_retries=1, quarantine_after=2),
        )
        results = compiler.run(
            [bad, BatchJob(name="ok", source=GOOD.replace("n = 8", "n = 10"))]
        )
        by_name = {r.name: r for r in results}
        assert "quarantined" in by_name["bad"].error
        assert by_name["ok"].ok
        assert bad_key in compiler.quarantined
        assert compiler.stats.quarantined == 1

    def test_quarantined_job_not_retried_on_next_run(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_compile_job", _always_crash)
        compiler = BatchCompiler(
            workers=1,
            policy=RetryPolicy(
                timeout=30.0, backoff=0.0, max_retries=0, quarantine_after=1
            ),
        )
        (first,) = compiler.run([good_job()])
        assert "quarantined" in first.error
        monkeypatch.setattr(batch_mod, "_compile_job", _REAL_COMPILE_JOB)
        (second,) = compiler.run([good_job()])  # served from result cache
        assert second.from_cache and "quarantined" in second.error

    def test_transient_crash_recovers_on_retry(self, monkeypatch, tmp_path):
        """First attempt dies, retry succeeds: the flag file is the
        cross-process 'already crashed once' signal."""
        import sys

        monkeypatch.setattr(
            sys.modules[__name__], "_FLAG_PATH",
            str(tmp_path / "crashed-once"),
        )
        monkeypatch.setattr(batch_mod, "_compile_job", _crash_once)
        compiler = BatchCompiler(
            workers=1,
            policy=RetryPolicy(
                timeout=30.0, backoff=0.0, max_retries=2, quarantine_after=3
            ),
        )
        (result,) = compiler.run([good_job()])
        assert result.ok
        assert compiler.stats.retries >= 1
        assert compiler.stats.quarantined == 0

    def test_unpicklable_job_is_structured_failure(self):
        """A job the pool cannot even ship to a worker must come back as
        an error result, not escape as a bare pickling exception."""
        poisoned = BatchJob(name="poison", source=GOOD, params={"n": lambda: 1})
        compiler = BatchCompiler(
            workers=2,
            policy=RetryPolicy(backoff=0.0, max_retries=0, quarantine_after=1),
        )
        (result,) = compiler.run([poisoned])
        assert not result.ok
        assert "quarantined" in result.error


class TestTimeout:
    def test_hung_job_times_out_and_quarantines(self, monkeypatch):
        monkeypatch.setattr(batch_mod, "_compile_job", _hang_on_slow)
        compiler = BatchCompiler(
            workers=2,
            policy=RetryPolicy(
                timeout=0.5, backoff=0.0, max_retries=0, quarantine_after=1
            ),
        )
        results = compiler.run(
            [
                BatchJob(name="slow", source=GOOD),
                BatchJob(name="ok", source=GOOD.replace("n = 8", "n = 10")),
            ]
        )
        by_name = {r.name: r for r in results}
        assert "quarantined" in by_name["slow"].error
        assert "timed out" in by_name["slow"].error
        assert by_name["ok"].ok
        assert compiler.stats.timeouts >= 1


class TestPolicyValidation:
    def test_default_policy_unpooled_single_worker(self):
        """No timeout and one worker: the serial path (no pool overhead)."""
        compiler = BatchCompiler()
        (result,) = compiler.run([good_job()])
        assert result.ok and not result.from_cache

    def test_timeout_forces_pool_even_with_one_worker(self, monkeypatch):
        spawned = {"pool": False}
        real_pool = batch_mod.ProcessPoolExecutor

        class SpyPool(real_pool):
            def __init__(self, *args, **kwargs):
                spawned["pool"] = True
                super().__init__(*args, **kwargs)

        monkeypatch.setattr(batch_mod, "ProcessPoolExecutor", SpyPool)
        compiler = BatchCompiler(workers=1, policy=RetryPolicy(timeout=30.0))
        (result,) = compiler.run([good_job()])
        assert result.ok and spawned["pool"]
