"""Byte-identical schedules across the pass-manager refactor.

``tests/golden/schedules.json`` was generated from the pre-refactor
pipeline (the hand-rolled strategy dispatch with per-pass try/except
blocks).  Every benchmark x strategy record captures the full schedule —
positions, combined groups, eliminations — plus the simulator's message
counts and communication time on the SP2 model.  The pass-manager
pipeline must reproduce all of it exactly: the refactor moved the fault
boundaries and tracing into a framework, it must not move a single
communication.
"""

import json
import os

import pytest

from repro.core.pipeline import Strategy, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.machine.model import MACHINES
from repro.runtime.simulator import simulate

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "schedules.json")


def schedule_record(result):
    report = simulate(result, MACHINES["SP2"])
    return {
        "call_sites": result.call_sites(),
        "call_sites_by_kind": result.call_sites_by_kind(),
        "eliminated": sorted(e.label for e in result.eliminated_entries()),
        "schedule": [
            [str(pc.position), sorted(e.label for e in pc.entries)]
            for pc in result.placed
        ],
        "messages_per_proc": report.messages_per_proc,
        "sim_comm_us": round(report.comm_time * 1e6, 3),
    }


with open(GOLDEN) as fh:
    GOLDEN_RECORDS = json.load(fh)


# Optimality metadata from the exact anytime solver (repro.solver): the
# best message count found for the whole benchmark, how far the greedy
# strategy sits above it, and whether the solver proved optimality.
# These describe the *solver's* result, not this strategy's schedule, so
# the byte-identity check strips them first.
OPTIMALITY_KEYS = ("optimal_messages", "gap", "proved_optimal")


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
@pytest.mark.parametrize("strategy", list(Strategy))
def test_schedule_matches_golden(bench_name, strategy):
    result = compile_program(BENCHMARKS[bench_name], strategy=strategy)
    assert not result.degradations
    golden = dict(GOLDEN_RECORDS[bench_name][strategy.value])
    for key in OPTIMALITY_KEYS:
        golden.pop(key, None)
    assert schedule_record(result) == golden


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
@pytest.mark.parametrize("strategy", list(Strategy))
def test_greedy_within_recorded_gap(bench_name, strategy):
    """The greedy count must never regress past the recorded
    greedy/optimal envelope (``optimal_messages * gap``)."""
    golden = GOLDEN_RECORDS[bench_name][strategy.value]
    result = compile_program(BENCHMARKS[bench_name], strategy=strategy)
    envelope = golden["optimal_messages"] * golden["gap"]
    assert result.call_sites() <= envelope + 1e-9
