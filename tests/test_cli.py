"""Command-line interface tests."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "demo.hpf"
    path.write_text(
        """PROGRAM demo
  PARAM n = 32
  PROCESSORS p(4)
  REAL a(n)
  REAL b(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DO t = 1, 5
    b(2:n-1) = a(1:n-2) + a(3:n)
    a(2:n-1) = b(2:n-1)
  END DO
END PROGRAM
"""
    )
    return str(path)


class TestCompile:
    def test_default_strategy(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        out = capsys.readouterr().out
        assert "strategy comb" in out
        assert "call sites" in out

    def test_all_strategies(self, program_file, capsys):
        assert main(["compile", program_file, "--all"]) == 0
        out = capsys.readouterr().out
        for name in ("orig", "nored", "comb"):
            assert f"strategy {name}" in out

    def test_report_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--report"]) == 0
        assert "COMM" in capsys.readouterr().out

    def test_listing_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--listing"]) == 0
        out = capsys.readouterr().out
        assert "PROGRAM demo" in out and "! COMM" in out

    def test_check_flag(self, program_file, capsys):
        assert main(["compile", program_file, "--check"]) == 0
        assert "schedule verified" in capsys.readouterr().out

    def test_param_override(self, program_file, capsys):
        assert main(["compile", program_file, "--param", "n=64"]) == 0

    def test_bad_param(self, program_file):
        with pytest.raises(SystemExit):
            main(["compile", program_file, "--param", "oops"])

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.hpf"]) == 2
        err = capsys.readouterr().err
        assert "no such file" in err
        assert "Traceback" not in err
        assert len(err.strip().splitlines()) == 1  # one-line diagnostic

    def test_missing_file_simulate(self, capsys):
        assert main(["simulate", "/nonexistent.hpf"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_compile_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.hpf"
        bad.write_text("PROGRAM x\nq = undeclared_thing\nEND\n")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_multiple_syntax_errors_one_run(self, tmp_path, capsys):
        bad = tmp_path / "bad.hpf"
        bad.write_text(
            "PROGRAM x\nREAL a(4)\na(1) = = 1\na(2) = * 2\na(3) = 3\nEND\n"
        )
        assert main(["compile", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.count("E0200") == 2  # both errors in one run

    def test_max_errors_cap(self, tmp_path, capsys):
        bad = tmp_path / "bad.hpf"
        lines = [f"a({i}) = = {i}" for i in range(1, 8)]
        bad.write_text("PROGRAM x\nREAL a(9)\n" + "\n".join(lines) + "\nEND\n")
        assert main(["compile", str(bad), "--max-errors", "3"]) == 1
        assert capsys.readouterr().err.count("E0200") == 3

    def test_diagnostics_json_errors(self, tmp_path, capsys):
        import json

        bad = tmp_path / "bad.hpf"
        bad.write_text("PROGRAM x\nREAL a(4)\na(1) = = 1\nEND\n")
        assert main(["compile", str(bad), "--diagnostics-json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["file"] == str(bad)
        (diag,) = payload["diagnostics"]
        assert diag["code"] == "E0200"
        assert diag["severity"] == "error"
        assert diag["line"] == 3

    def test_diagnostics_json_clean(self, program_file, capsys):
        import json

        assert main(["compile", program_file, "--diagnostics-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["diagnostics"] == []

    def test_strict_flag_accepted(self, program_file):
        assert main(["compile", program_file, "--strict"]) == 0


class TestPassFlags:
    def test_list_passes(self, capsys):
        assert main(["compile", "--list-passes"]) == 0
        out = capsys.readouterr().out
        for name in ("analyze", "subset", "redundancy", "greedy",
                     "latest-placement", "earliest-placement", "ilp"):
            assert name in out
        assert "§4.5" in out and "§6.1" in out

    def test_list_passes_reflects_disable(self, capsys):
        assert main(
            ["compile", "--list-passes", "--disable-pass", "greedy"]
        ) == 0
        greedy_row = next(
            ln for ln in capsys.readouterr().out.splitlines()
            if ln.startswith("greedy")
        )
        assert " no " in greedy_row

    def test_no_file_without_list_passes(self, capsys):
        assert main(["compile"]) == 2
        assert "source file is required" in capsys.readouterr().err

    def test_trace_json(self, program_file, capsys):
        import json

        assert main(["compile", program_file, "--trace-json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["file"] == program_file
        (record,) = payload["strategies"]
        assert record["strategy"] == "comb"
        names = [t["pass"] for t in record["passes"]]
        assert names == ["analyze", "subset", "redundancy", "greedy"]
        for trace in record["passes"]:
            assert trace["wall_s"] >= 0
            assert trace["degraded"] is False

    def test_trace_json_all_strategies(self, program_file, capsys):
        import json

        assert main(
            ["compile", program_file, "--all", "--trace-json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [r["strategy"] for r in payload["strategies"]] == [
            "orig", "nored", "comb",
        ]

    def test_dump_after(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--dump-after", "subset"]
        ) == 0
        err = capsys.readouterr().err
        assert "== dump after pass 'subset'" in err

    def test_dump_after_unknown_pass(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--dump-after", "nope"]
        ) == 2
        assert "unknown pass 'nope'" in capsys.readouterr().err

    def test_disable_pass(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--disable-pass", "greedy", "--check"]
        ) == 0
        assert "schedule verified" in capsys.readouterr().out

    def test_disable_unknown_pass(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--disable-pass", "nope"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown pass 'nope'" in err and "greedy" in err

    def test_disable_structural_pass_rejected(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--disable-pass", "analyze"]
        ) == 2
        assert "structural" in capsys.readouterr().err

    def test_custom_pipeline(self, program_file, capsys):
        import json

        assert main(
            ["compile", program_file, "--pipeline", "subset,greedy",
             "--trace-json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (record,) = payload["strategies"]
        assert [t["pass"] for t in record["passes"]] == [
            "analyze", "subset", "greedy",
        ]

    def test_bad_pipeline_name(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--pipeline", "subset,nope"]
        ) == 2
        assert "unknown pass 'nope'" in capsys.readouterr().err

    def test_named_exact_pipeline(self, program_file, capsys):
        import json

        assert main(
            ["compile", program_file, "--pipeline", "exact",
             "--solver-budget-ms", "500", "--check", "--trace-json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        (record,) = payload["strategies"]
        assert [t["pass"] for t in record["passes"]] == ["analyze", "exact"]
        assert not any(t["degraded"] for t in record["passes"])

    def test_negative_solver_budget_rejected(self, program_file, capsys):
        assert main(
            ["compile", program_file, "--solver-budget-ms", "-5"]
        ) == 2
        assert "--solver-budget-ms" in capsys.readouterr().err

    def test_non_integer_solver_budget_rejected(self, program_file):
        with pytest.raises(SystemExit) as exc:
            main(["compile", program_file, "--solver-budget-ms", "soon"])
        assert exc.value.code == 2

    def test_list_passes_shows_exact(self, capsys):
        assert main(["compile", "--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "exact" in out and "§4+§6.1" in out


class TestOtherCommands:
    def test_simulate(self, program_file, capsys):
        assert main(["simulate", program_file, "--machine", "NOW"]) == 0
        out = capsys.readouterr().out
        assert "msgs/proc" in out
        assert out.count("norm") == 3

    def test_table(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "shallow" in out and "YES" in out

    def test_profile(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "SP2" in out and "NOW" in out and "knee" in out


class TestBatchNdjson:
    def test_every_line_parses_independently(self, program_file, capsys):
        import json

        assert main(["batch", program_file, "--ndjson"]) == 0
        lines = [
            ln for ln in capsys.readouterr().out.splitlines() if ln
        ]
        records = [json.loads(ln) for ln in lines]  # one object per line
        assert [r["kind"] for r in records] == ["result", "summary"]
        result, summary = records
        assert result["name"] == program_file
        assert result["ok"] is True and not result["error"]
        assert summary["jobs"] == 1 and summary["errors"] == 0
        assert "cache" in summary

    def test_ndjson_streams_cache_hits_and_suppresses_human_report(
        self, program_file, capsys
    ):
        import json

        assert main([
            "batch", program_file, "--ndjson", "--repeat", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "round" not in out  # pure NDJSON, no human report
        records = [json.loads(ln) for ln in out.splitlines() if ln]
        results = [r for r in records if r["kind"] == "result"]
        assert len(results) == 2
        assert results[0]["from_cache"] is False
        assert results[1]["from_cache"] is True

    def test_cache_dir_reuses_across_invocations(
        self, program_file, tmp_path, capsys
    ):
        import json

        cache_dir = str(tmp_path / "cache")
        assert main([
            "batch", program_file, "--ndjson", "--cache-dir", cache_dir,
        ]) == 0
        capsys.readouterr()
        assert main([
            "batch", program_file, "--ndjson", "--cache-dir", cache_dir,
        ]) == 0
        records = [
            json.loads(ln)
            for ln in capsys.readouterr().out.splitlines() if ln
        ]
        (result,) = [r for r in records if r["kind"] == "result"]
        (summary,) = [r for r in records if r["kind"] == "summary"]
        assert result["from_cache"] is True
        assert summary["cache"]["disk_hits"] == 1
