"""SPMD execution tests: compiled programs on simulated ranks must
reproduce the sequential F90 semantics exactly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.pipeline import Strategy, compile_all_strategies, compile_program
from repro.errors import SimulationError
from repro.evaluation.programs import BENCHMARKS
from repro.ir.cfg import Position
from repro.runtime.interp import interpret
from repro.runtime.spmd import SPMDExecutor, execute_spmd

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


def assert_matches_sequential(result):
    state, stats = execute_spmd(result)
    ref = interpret(result.info)
    for name in ref:
        np.testing.assert_array_equal(
            state[name], ref[name], err_msg=f"array {name} diverged"
        )
    return stats


class TestBenchmarksMatchSequential:
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_exact_equality(self, program, strategy):
        result = compile_program(
            BENCHMARKS[program], params=SMALL[program], strategy=strategy
        )
        stats = assert_matches_sequential(result)
        if result.entries:
            assert stats.messages > 0

    def test_fig4(self, fig4_source):
        for result in compile_all_strategies(fig4_source).values():
            assert_matches_sequential(result)

    def test_stencil(self, stencil_source):
        for result in compile_all_strategies(stencil_source).values():
            assert_matches_sequential(result)

    def test_different_seeds(self, stencil_source):
        result = compile_program(stencil_source)
        for seed in (1, 99, 31337):
            executor = SPMDExecutor(result, seed=seed)
            executor.run()
            state = executor.assemble()
            ref = interpret(result.info, seed=seed)
            for name in ref:
                np.testing.assert_array_equal(state[name], ref[name])


class TestMessageAccounting:
    def test_combining_reduces_wire_messages(self):
        params = SMALL["shallow"]
        results = compile_all_strategies(BENCHMARKS["shallow"], params=params)
        msgs = {}
        bytes_ = {}
        for strategy, result in results.items():
            _, stats = execute_spmd(result)
            msgs[strategy] = stats.messages
            bytes_[strategy] = stats.bytes_moved
        # Redundancy elimination cuts both messages and volume; combining
        # then cuts messages without changing the volume.
        assert msgs[Strategy.EARLIEST] < msgs[Strategy.ORIG]
        assert bytes_[Strategy.EARLIEST] < bytes_[Strategy.ORIG]
        assert msgs[Strategy.GLOBAL] < msgs[Strategy.EARLIEST]
        assert bytes_[Strategy.GLOBAL] == bytes_[Strategy.EARLIEST]

    def test_remote_reads_strategy_independent(self, stencil_source):
        counts = set()
        for result in compile_all_strategies(stencil_source).values():
            _, stats = execute_spmd(result)
            counts.add(stats.remote_reads)
        assert len(counts) == 1  # the program's data needs don't change

    def test_reduction_statistics(self):
        result = compile_program(BENCHMARKS["gravity"], params=SMALL["gravity"])
        _, stats = execute_spmd(result)
        # 8 SUMs per iteration x 6 inner iterations (i = 2..7)
        assert stats.reductions == 48


class TestFailureDetection:
    def test_dropped_schedule_detected(self, stencil_source):
        result = compile_program(stencil_source, strategy="comb")
        result.placed.clear()
        with pytest.raises(SimulationError, match="not present"):
            execute_spmd(result)

    def test_hoisted_too_far_detected(self, stencil_source):
        result = compile_program(stencil_source, strategy="comb")
        ctx = result.ctx
        time_loop = ctx.cfg.loops[0]
        for pc in result.placed:
            if any(e.array == "a" for e in pc.entries):
                pc.position = Position(time_loop.preheader.id, -1)
        with pytest.raises(SimulationError, match="stale"):
            execute_spmd(result)

    def test_boundary_processors_have_no_phantom_partner(self):
        # A shift on a 2-processor axis: the edge rank receives nothing
        # from outside the mesh; execution must still succeed.
        result = compile_program(
            """
            PROGRAM edge
              PARAM n = 8
              PROCESSORS p(2)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              b(2:n) = a(1:n-1)
            END
            """
        )
        _, stats = execute_spmd(result)
        assert stats.messages == 1  # only the interior boundary crossing


class TestCyclicDistribution:
    SRC = """
    PROGRAM cyc
      PARAM n = 12
      PROCESSORS p(3)
      REAL a(n)
      REAL b(n)
      DISTRIBUTE a(CYCLIC) ONTO p
      DISTRIBUTE b(CYCLIC) ONTO p
      DO t = 1, 2
        b(2:n) = a(1:n-1)
        a(2:n) = b(2:n)
      END DO
    END
    """

    def test_cyclic_shift_matches_sequential(self):
        for strategy in Strategy:
            result = compile_program(self.SRC, strategy=strategy)
            assert_matches_sequential(result)

    def test_cyclic_partners_wrap(self):
        result = compile_program(self.SRC)
        _, stats = execute_spmd(result)
        # every rank has a wrapped partner: 3 messages per fired exchange
        assert stats.messages % 3 == 0

    def test_cyclic_general_mix(self):
        src = """
        PROGRAM mix
          PARAM n = 12
          PROCESSORS p(3)
          REAL a(n)
          REAL r(n)
          REAL s
          DISTRIBUTE a(CYCLIC) ONTO p
          s = SUM(a(1:n))
          r(1:n) = a(1:n) + s
        END
        """
        result = compile_program(src)
        assert_matches_sequential(result)


class TestRaggedBlocks:
    """Extents not divisible by the processor count: the last block is
    smaller (ceil-division block size), halos still line up."""

    def test_ragged_1d(self):
        result = compile_program(
            """
            PROGRAM ragged
              PARAM n = 11
              PROCESSORS p(3)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DO t = 1, 2
                b(2:n-1) = a(1:n-2) + a(3:n)
                a(2:n-1) = b(2:n-1)
              END DO
            END
            """
        )
        assert_matches_sequential(result)

    def test_ragged_2d_asymmetric_grid(self):
        result = compile_program(
            """
            PROGRAM ragged2
              PARAM n = 13
              PROCESSORS p(3, 2)
              REAL u(n, n)
              REAL w(n, n)
              DISTRIBUTE u(BLOCK, BLOCK) ONTO p
              DISTRIBUTE w(BLOCK, BLOCK) ONTO p
              w(2:n-1, 2:n-1) = u(1:n-2, 2:n-1) + u(2:n-1, 3:n)
              u(2:n-1, 2:n-1) = w(2:n-1, 2:n-1)
            END
            """
        )
        assert_matches_sequential(result)

    def test_more_procs_than_block_rows(self):
        # extent 5 over 4 procs: block size 2, last block ragged, one
        # processor owns a single row
        result = compile_program(
            """
            PROGRAM tiny
              PARAM n = 5
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              b(2:n) = a(1:n-1)
            END
            """
        )
        assert_matches_sequential(result)

    def test_three_d_collapsed_plus_blocks(self):
        result = compile_program(
            """
            PROGRAM threed
              PARAM n = 7
              PROCESSORS p(2, 2)
              REAL g(n, n, n)
              REAL h(n, n, n)
              DISTRIBUTE g(*, BLOCK, BLOCK) ONTO p
              DISTRIBUTE h(*, BLOCK, BLOCK) ONTO p
              h(:, 2:n-1, 2:n-1) = g(:, 1:n-2, 2:n-1) + g(:, 2:n-1, 3:n)
              g(:, 2:n-1, 2:n-1) = h(:, 2:n-1, 2:n-1)
            END
            """
        )
        assert_matches_sequential(result)


class TestDiagonalShift:
    """A diagonal access moves data between corner-neighbour ranks; the
    executor must route it through the (dx, dy) partner, not an axis
    neighbour."""

    SRC = """
    PROGRAM diag
      PARAM n = 12
      PROCESSORS p(2, 2)
      REAL a(n, n)
      REAL b(n, n)
      DISTRIBUTE a(BLOCK, BLOCK) ONTO p
      DISTRIBUTE b(BLOCK, BLOCK) ONTO p
      b(2:n-1, 2:n-1) = a(3:n, 3:n)
    END
    """

    def test_matches_sequential(self):
        result = compile_program(self.SRC)
        assert_matches_sequential(result)

    def test_augmented_two_phase_exchange(self):
        """The diagonal travels as two augmented axis exchanges (pHPF's
        corner forwarding, paper §2.2): two messages per phase on a 2x2
        mesh, and the corner value crosses two hops."""
        result = compile_program(self.SRC)
        (pc,) = result.placed
        assert pc.entries[0].pattern.mapping.proc_shifts == (1, 1)
        _, stats = execute_spmd(result)
        assert stats.messages == 4


class TestDiagonalVariants:
    def test_negative_diagonal(self):
        result = compile_program(
            """
            PROGRAM diagneg
              PARAM n = 12
              PROCESSORS p(2, 2)
              REAL a(n, n)
              REAL b(n, n)
              DISTRIBUTE a(BLOCK, BLOCK) ONTO p
              DISTRIBUTE b(BLOCK, BLOCK) ONTO p
              b(2:n-1, 2:n-1) = a(1:n-2, 1:n-2)
            END
            """
        )
        assert_matches_sequential(result)

    def test_mixed_sign_diagonal(self):
        result = compile_program(
            """
            PROGRAM diagmix
              PARAM n = 12
              PROCESSORS p(2, 2)
              REAL a(n, n)
              REAL b(n, n)
              DISTRIBUTE a(BLOCK, BLOCK) ONTO p
              DISTRIBUTE b(BLOCK, BLOCK) ONTO p
              b(2:n-1, 2:n-1) = a(3:n, 1:n-2)
            END
            """
        )
        assert_matches_sequential(result)

    def test_diagonal_in_time_loop(self):
        result = compile_program(
            """
            PROGRAM diagloop
              PARAM n = 10
              PROCESSORS p(2, 2)
              REAL a(n, n)
              REAL b(n, n)
              DISTRIBUTE a(BLOCK, BLOCK) ONTO p
              DISTRIBUTE b(BLOCK, BLOCK) ONTO p
              DO t = 1, 3
                b(2:n-1, 2:n-1) = a(3:n, 3:n) + a(1:n-2, 1:n-2)
                a(2:n-1, 2:n-1) = 0.5 * b(2:n-1, 2:n-1)
              END DO
            END
            """
        )
        assert_matches_sequential(result)

    def test_diagonal_on_larger_mesh(self):
        result = compile_program(
            """
            PROGRAM diagbig
              PARAM n = 12
              PROCESSORS p(3, 2)
              REAL a(n, n)
              REAL b(n, n)
              DISTRIBUTE a(BLOCK, BLOCK) ONTO p
              DISTRIBUTE b(BLOCK, BLOCK) ONTO p
              b(2:n-1, 2:n-1) = a(3:n, 3:n)
            END
            """
        )
        assert_matches_sequential(result)
