"""Error-hierarchy and diagnostics tests."""

from __future__ import annotations

import pytest

from repro.errors import (
    CodegenError,
    DependenceError,
    LexError,
    ParseError,
    PlacementError,
    ReproError,
    ScalarizationError,
    SemanticError,
    SimulationError,
    SourceLocation,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LexError("x", SourceLocation(1, 1)),
            ParseError("x"),
            SemanticError("x"),
            ScalarizationError("x"),
            DependenceError("x"),
            PlacementError("x"),
            CodegenError("x"),
            SimulationError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_single_catch_point(self):
        """A downstream user catches ReproError once for any phase."""
        from repro import compile_program

        with pytest.raises(ReproError):
            compile_program("PROGRAM x\nq = nothing\nEND")
        with pytest.raises(ReproError):
            compile_program("PROGRAM x\n= broken\nEND")

    def test_non_affine_is_dependence_error(self):
        from repro.affine import NonAffineError

        assert issubclass(NonAffineError, DependenceError)


class TestSourceLocation:
    def test_repr(self):
        assert repr(SourceLocation(3, 7)) == "3:7"

    def test_equality_and_hash(self):
        assert SourceLocation(1, 2) == SourceLocation(1, 2)
        assert hash(SourceLocation(1, 2)) == hash(SourceLocation(1, 2))
        assert SourceLocation(1, 2) != SourceLocation(1, 3)

    def test_ordering(self):
        assert SourceLocation(1, 9) < SourceLocation(2, 1)
        assert SourceLocation(2, 1) < SourceLocation(2, 5)

    def test_lex_error_carries_location(self):
        err = LexError("bad char", SourceLocation(4, 2))
        assert "4:2" in str(err)
        assert err.location.line == 4

    def test_parse_error_location_optional(self):
        assert "parse error:" in str(ParseError("oops"))
        with_loc = ParseError("oops", SourceLocation(2, 2))
        assert "at 2:2" in str(with_loc)


class TestDiagnosticQuality:
    """Error messages must identify the offending construct."""

    def test_undeclared_name_mentioned(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="ghost"):
            compile_program("PROGRAM x\nREAL s\ns = ghost\nEND")

    def test_rank_mismatch_mentions_array(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="'a'"):
            compile_program("PROGRAM x\nREAL a(4, 4)\na(1) = 0\nEND")

    def test_conformance_error_names_statement(self):
        from repro import compile_program

        with pytest.raises(ScalarizationError, match="statement"):
            compile_program(
                "PROGRAM x\nREAL a(8)\nREAL b(8)\na(1:4) = b(1:6)\nEND"
            )

    def test_distribute_error_names_target(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="'q'"):
            compile_program(
                "PROGRAM x\nPROCESSORS p(2)\nDISTRIBUTE q(BLOCK) ONTO p\nEND"
            )
