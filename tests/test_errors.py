"""Error-hierarchy and diagnostics tests."""

from __future__ import annotations

import pytest

from repro.errors import (
    DEGRADED_CODE,
    ERROR_CODES,
    CodegenError,
    DependenceError,
    Diagnostic,
    InternalCompilerError,
    LexError,
    ParseError,
    PlacementError,
    ReproError,
    ScalarizationError,
    SemanticError,
    Severity,
    SimulationError,
    SourceLocation,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            LexError("x", SourceLocation(1, 1)),
            ParseError("x"),
            SemanticError("x"),
            ScalarizationError("x"),
            DependenceError("x"),
            PlacementError("x"),
            CodegenError("x"),
            SimulationError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_single_catch_point(self):
        """A downstream user catches ReproError once for any phase."""
        from repro import compile_program

        with pytest.raises(ReproError):
            compile_program("PROGRAM x\nq = nothing\nEND")
        with pytest.raises(ReproError):
            compile_program("PROGRAM x\n= broken\nEND")

    def test_non_affine_is_dependence_error(self):
        from repro.affine import NonAffineError

        assert issubclass(NonAffineError, DependenceError)


class TestSourceLocation:
    def test_repr(self):
        assert repr(SourceLocation(3, 7)) == "3:7"

    def test_equality_and_hash(self):
        assert SourceLocation(1, 2) == SourceLocation(1, 2)
        assert hash(SourceLocation(1, 2)) == hash(SourceLocation(1, 2))
        assert SourceLocation(1, 2) != SourceLocation(1, 3)

    def test_ordering(self):
        assert SourceLocation(1, 9) < SourceLocation(2, 1)
        assert SourceLocation(2, 1) < SourceLocation(2, 5)

    def test_lex_error_carries_location(self):
        err = LexError("bad char", SourceLocation(4, 2))
        assert "4:2" in str(err)
        assert err.location.line == 4

    def test_parse_error_location_optional(self):
        assert "parse error:" in str(ParseError("oops"))
        with_loc = ParseError("oops", SourceLocation(2, 2))
        assert "at 2:2" in str(with_loc)


class TestDiagnosticQuality:
    """Error messages must identify the offending construct."""

    def test_undeclared_name_mentioned(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="ghost"):
            compile_program("PROGRAM x\nREAL s\ns = ghost\nEND")

    def test_rank_mismatch_mentions_array(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="'a'"):
            compile_program("PROGRAM x\nREAL a(4, 4)\na(1) = 0\nEND")

    def test_conformance_error_names_statement(self):
        from repro import compile_program

        with pytest.raises(ScalarizationError, match="statement"):
            compile_program(
                "PROGRAM x\nREAL a(8)\nREAL b(8)\na(1:4) = b(1:6)\nEND"
            )

    def test_distribute_error_names_target(self):
        from repro import compile_program

        with pytest.raises(SemanticError, match="'q'"):
            compile_program(
                "PROGRAM x\nPROCESSORS p(2)\nDISTRIBUTE q(BLOCK) ONTO p\nEND"
            )


class TestErrorCodes:
    """Every phase has a stable machine-readable code."""

    EXPECTED = {
        "E0000": ReproError,
        "E0100": LexError,
        "E0200": ParseError,
        "E0300": SemanticError,
        "E0400": ScalarizationError,
        "E0500": DependenceError,
        "E0600": PlacementError,
        "E0700": CodegenError,
        "E0800": SimulationError,
        "E0900": InternalCompilerError,
    }

    def test_code_table_complete_and_stable(self):
        assert ERROR_CODES == self.EXPECTED

    def test_codes_are_unique(self):
        codes = [cls.code for cls in self.EXPECTED.values()]
        assert len(codes) == len(set(codes))

    def test_degraded_code_in_warning_space(self):
        assert DEGRADED_CODE.startswith("W")
        assert DEGRADED_CODE not in ERROR_CODES

    def test_all_errors_default_severity_error(self):
        for cls in self.EXPECTED.values():
            assert cls.severity is Severity.ERROR


class TestDiagnosticRendering:
    def test_format_with_location(self):
        diag = Diagnostic(
            code="E0200", severity="error", message="unexpected token",
            phase="parse", line=3, column=7,
        )
        assert diag.format("prog.hpf") == (
            "prog.hpf:3:7: error[E0200]: unexpected token"
        )

    def test_format_without_location_or_filename(self):
        diag = Diagnostic(code="E0600", severity="error", message="oops")
        assert diag.format() == "<input>: error[E0600]: oops"

    def test_to_dict_round_trips_fields(self):
        diag = Diagnostic(
            code="E0300", severity="error", message="m", phase="semantic",
            line=1, column=2,
        )
        assert diag.to_dict() == {
            "code": "E0300", "severity": "error", "phase": "semantic",
            "message": "m", "line": 1, "column": 2,
        }

    def test_error_diagnostic_carries_location(self):
        err = SemanticError("bad thing", SourceLocation(5, 9))
        diag = err.diagnostic()
        assert (diag.code, diag.line, diag.column) == ("E0300", 5, 9)
        assert diag.severity == "error"

    def test_lex_error_diagnostic_unprefixed(self):
        """diagnostic() must not repeat the location text already baked
        into str(err)."""
        err = LexError("bad char", SourceLocation(4, 2))
        assert err.diagnostic().message == "bad char"
        assert err.diagnostic().line == 4


class TestLocationsAttached:
    """Frontend errors must point at the offending source line."""

    def test_semantic_error_has_location(self):
        from repro import compile_program

        with pytest.raises(SemanticError) as exc_info:
            compile_program("PROGRAM x\nREAL s\ns = ghost\nEND")
        assert exc_info.value.location is not None
        assert exc_info.value.location.line == 3

    def test_distribute_error_has_location(self):
        from repro import compile_program

        with pytest.raises(SemanticError) as exc_info:
            compile_program(
                "PROGRAM x\nPROCESSORS p(2)\nDISTRIBUTE q(BLOCK) ONTO p\nEND"
            )
        assert exc_info.value.location is not None
        assert exc_info.value.location.line == 3

    def test_scalarization_error_has_location(self):
        from repro import compile_program

        with pytest.raises(ScalarizationError) as exc_info:
            compile_program(
                "PROGRAM x\nREAL a(8)\nREAL b(8)\na(1:4) = b(1:6)\nEND"
            )
        assert exc_info.value.location is not None
        assert exc_info.value.location.line == 4
