"""Fused-kernel tier equivalence suite.

The compiled per-rank kernels (:mod:`repro.runtime.kernels`) must be an
invisible optimization, exactly like the vectorized runtime they sit
on: for every Figure 10 program under every placement strategy, running
with kernels on is bitwise-identical to kernels off — same final
arrays, same movement counters, same wire traffic on every transport
backend — and the staleness oracle keeps its full detection power.
Also covered here: the CommPlan canonicalization that the kernel work
rode in on (gravity's shifting all-pairs geometry must now hit the plan
cache), the transport send-buffer pools, and the tier-degradation
contract for the optional numba backend.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import Strategy, compile_program
from repro.errors import SimulationError
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.interp import interpret
from repro.runtime.kernels import resolve_tier
from repro.runtime.spmd import SPMDExecutor, execute_spmd

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


def _compile(program: str, strategy: Strategy = Strategy.GLOBAL):
    return compile_program(
        BENCHMARKS[program], params=SMALL[program], strategy=strategy
    )


def _numba_available() -> bool:
    try:
        import numba  # noqa: F401
    except ImportError:
        return False
    return True


# ---------------------------------------------------------------------------
# Bitwise equivalence: six programs x three strategies, kernels on/off
# ---------------------------------------------------------------------------


class TestKernelBitwise:
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_kernels_match_interpreted_and_reference(
        self, program, strategy
    ):
        result = _compile(program, strategy)
        kern_state, kern_stats = execute_spmd(result, kernels="python")
        off_state, off_stats = execute_spmd(result, kernels="off")
        ref = interpret(result.info)
        assert set(kern_state) == set(off_state)
        for name in ref:
            np.testing.assert_array_equal(
                kern_state[name], off_state[name],
                err_msg=f"{program}/{strategy.value}: {name} kernels vs off",
            )
            np.testing.assert_array_equal(
                kern_state[name], ref[name],
                err_msg=f"{program}/{strategy.value}: {name} vs reference",
            )
        assert kern_stats.kernel_firings > 0, (
            f"{program}/{strategy.value}: kernel tier never fired"
        )

    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_movement_counters_match(self, program, strategy):
        result = _compile(program, strategy)
        _, kern = execute_spmd(result, kernels="python")
        _, off = execute_spmd(result, kernels="off")
        assert kern.messages == off.messages
        assert kern.bytes_moved == off.bytes_moved
        assert kern.remote_reads == off.remote_reads
        assert kern.reductions == off.reductions
        assert kern.bcopy_calls == off.bcopy_calls


# ---------------------------------------------------------------------------
# Wire parity: identical transport traffic with kernels on and off
# ---------------------------------------------------------------------------


class TestWireParity:
    @pytest.mark.parametrize("backend", ["inline", "threaded"])
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    def test_wire_bytes_identical_across_tiers(self, program, backend):
        result = _compile(program, Strategy.GLOBAL)
        wires = {}
        states = {}
        for tier in ("python", "off"):
            executor = SPMDExecutor(
                result, transport=backend, kernels=tier
            )
            try:
                executor.run()
                states[tier] = executor.assemble()
                wires[tier] = executor.wire.as_dict()
            finally:
                executor.close()
        for key in ("messages", "bytes_sent", "pair_msgs", "pair_bytes"):
            assert wires["python"][key] == wires["off"][key], (
                f"{program}/{backend}: wire {key} differs across tiers"
            )
        for name in states["python"]:
            np.testing.assert_array_equal(
                states["python"][name], states["off"][name],
                err_msg=f"{program}/{backend}: {name}",
            )

    def test_wire_bytes_identical_multiprocess(self):
        result = _compile("shallow", Strategy.GLOBAL)
        wires = {}
        for tier in ("python", "off"):
            executor = SPMDExecutor(
                result, transport="multiprocess", kernels=tier,
                watchdog_s=120.0,
            )
            try:
                executor.run()
                wires[tier] = executor.wire.as_dict()
            finally:
                executor.close()
        assert wires["python"]["bytes_sent"] == wires["off"]["bytes_sent"]
        assert wires["python"]["messages"] == wires["off"]["messages"]


# ---------------------------------------------------------------------------
# Send-buffer pools
# ---------------------------------------------------------------------------


class TestBufferPools:
    @pytest.mark.parametrize("backend", ["inline", "threaded"])
    def test_pools_hit_after_first_round(self, backend):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, transport=backend)
        try:
            executor.run()
            wire = executor.wire.as_dict()
        finally:
            executor.close()
        assert wire["pool_hits"] > 0, f"{backend}: pool never reused a buffer"
        # Steady state: reuse must dominate fresh allocation.
        assert wire["pool_hits"] > wire["pool_misses"]

    def test_multiprocess_pools_unused_by_design(self):
        # The mp backend packs straight into the shared-memory arena, so
        # its pool counters stay zero (documented in transport/mp.py).
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(
            result, transport="multiprocess", watchdog_s=120.0
        )
        try:
            executor.run()
            wire = executor.wire.as_dict()
        finally:
            executor.close()
        assert wire["pool_hits"] == 0
        assert wire["pool_misses"] == 0


# ---------------------------------------------------------------------------
# Tier selection and degradation
# ---------------------------------------------------------------------------


class TestTierSelection:
    def test_off_runs_no_kernels(self):
        result = _compile("shallow")
        _, stats = execute_spmd(result, kernels="off")
        assert stats.kernel_tier == "off"
        assert stats.kernel_firings == 0
        assert stats.kernel_compiles == 0

    def test_python_tier_fires_and_caches(self):
        result = _compile("shallow")
        _, stats = execute_spmd(result, kernels="python")
        assert stats.kernel_tier == "python"
        assert stats.kernel_firings > 0
        assert stats.kernel_compiles > 0
        assert stats.kernel_cache_hits > 0  # time loop reuses geometries

    @pytest.mark.skipif(
        _numba_available(), reason="numba installed: degradation impossible"
    )
    def test_numba_request_degrades_to_python_with_reason(self):
        # An explicit numba request on a machine without numba must not
        # fail: it degrades to the python tier and records why.
        result = _compile("shallow")
        state, stats = execute_spmd(result, kernels="numba")
        assert stats.kernel_tier == "python"
        assert stats.kernel_fallback_reason != ""
        assert stats.kernel_firings > 0
        ref_state, _ = execute_spmd(result, kernels="off")
        for name in state:
            np.testing.assert_array_equal(state[name], ref_state[name])

    @pytest.mark.skipif(
        _numba_available(), reason="numba installed: degradation impossible"
    )
    def test_resolve_tier_contract(self):
        # "off" never reaches resolve_tier: the executor skips engine
        # construction entirely for that request.
        assert resolve_tier("python") == ("python", None)
        tier, reason = resolve_tier("numba")
        assert tier == "python" and reason  # explicit request: recorded
        tier, reason = resolve_tier("auto")
        assert tier == "python" and reason is None  # probe: silent

    def test_auto_is_the_default(self):
        result = _compile("shallow")
        executor = SPMDExecutor(result)
        try:
            assert executor.kernels is not None
            stats = executor.run()
        finally:
            executor.close()
        assert stats.kernel_firings > 0


# ---------------------------------------------------------------------------
# CommPlan canonicalization (gravity's shifting all-pairs geometry)
# ---------------------------------------------------------------------------


class TestPlanCanonicalization:
    def test_gravity_plan_hit_rate_after_warmup(self):
        # Before translation-based canonicalization gravity recompiled a
        # plan for nearly every serial-loop iteration (~32% hit rate).
        # Shifted-origin firings must now be served by translating the
        # canonical plan: >= 90% hits once each geometry is warm.
        result = compile_program(
            BENCHMARKS["gravity"], params={"n": 16, "pr": 2, "pc": 2},
            strategy=Strategy.GLOBAL,
        )
        _, stats = execute_spmd(result)
        assert stats.plan_hit_rate >= 0.90, (
            f"gravity plan hit rate regressed: {stats.plan_hit_rate:.3f}"
        )
        assert stats.plan_translations > 0

    def test_translation_preserves_results_and_wire(self):
        # The translated plans must move exactly the bytes a fresh
        # compile would: compare against a run with the canonical cache
        # disabled by clearing it between firings is impractical, so use
        # the element-wise path (no plans at all) as the oracle.
        result = compile_program(
            BENCHMARKS["gravity"], params={"n": 16, "pr": 2, "pc": 2},
            strategy=Strategy.GLOBAL,
        )
        vec_state, vec_stats = execute_spmd(result)
        elem_state, elem_stats = execute_spmd(result, vectorize=False)
        for name in vec_state:
            np.testing.assert_array_equal(vec_state[name], elem_state[name])
        assert vec_stats.messages == elem_stats.messages
        assert vec_stats.bytes_moved == elem_stats.bytes_moved


# ---------------------------------------------------------------------------
# Oracle power: a miscompiled schedule still raises with kernels on
# ---------------------------------------------------------------------------


class TestOraclePreserved:
    def test_dropped_schedule_detected_by_kernels(self):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, kernels="python")
        executor.schedule.anchors.clear()
        with pytest.raises(SimulationError, match="not present"):
            executor.run()

    def test_partial_drop_detected_by_kernels(self):
        result = _compile("shallow", Strategy.GLOBAL)
        executor = SPMDExecutor(result, kernels="python")
        anchors = executor.schedule.anchors
        for anchor in sorted(anchors, key=repr)[::2]:
            del anchors[anchor]
        with pytest.raises(SimulationError):
            executor.run()


# ---------------------------------------------------------------------------
# Property test: random programs, kernel tier vs element-wise executor
# ---------------------------------------------------------------------------

N = 12
ARRAYS = ["u", "v", "w", "x"]


@st.composite
def stencil_statement(draw):
    dst = draw(st.sampled_from(ARRAYS))
    terms = []
    for _ in range(draw(st.integers(1, 2))):
        src = draw(st.sampled_from(ARRAYS + [dst]))
        shift = draw(st.integers(-2, 2))
        terms.append(f"{src}({3 + shift}:{N - 2 + shift})")
    op = draw(st.sampled_from([" + ", " * "]))
    return f"{dst}(3:{N - 2}) = {op.join(terms)}"


@st.composite
def kernel_program(draw):
    stmts = draw(st.lists(stencil_statement(), min_size=1, max_size=4))
    body = "\n".join(stmts)
    if draw(st.booleans()):
        body = f"DO tstep = 1, 3\n{body}\nEND DO"
    decls = "\n".join(
        f"REAL {a}({N})\nDISTRIBUTE {a}(BLOCK) ONTO p" for a in ARRAYS
    )
    return (
        f"PROGRAM kernprog\nPARAM n = {N}\nPROCESSORS p(3)\n"
        f"{decls}\n{body}\nEND PROGRAM"
    )


@settings(max_examples=25, deadline=None)
@given(source=kernel_program())
def test_random_programs_kernels_match_elementwise(source):
    result = compile_program(source, strategy=Strategy.GLOBAL)
    kern_state, kern_stats = execute_spmd(result, kernels="python")
    elem_state, elem_stats = execute_spmd(
        result, vectorize=False, kernels="off"
    )
    for name in kern_state:
        np.testing.assert_array_equal(
            kern_state[name], elem_state[name], err_msg=name
        )
    assert kern_stats.messages == elem_stats.messages
    assert kern_stats.bytes_moved == elem_stats.bytes_moved
