"""Distribution / layout tests: ownership, block arithmetic, mapping
equality — with property tests over random layouts."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.distribution.layout import (
    DimMapping,
    DistFormat,
    Layout,
    ProcessorGrid,
    replicated_layout,
)
from repro.errors import SemanticError


def grid2() -> ProcessorGrid:
    return ProcessorGrid("p", (4, 2))


def block_layout(extent0=16, extent1=8) -> Layout:
    return Layout(
        "a",
        grid2(),
        (
            DimMapping(DistFormat.BLOCK, extent0, grid_axis=0),
            DimMapping(DistFormat.BLOCK, extent1, grid_axis=1),
        ),
    )


class TestGrid:
    def test_size(self):
        assert grid2().size == 8

    def test_invalid_shape(self):
        with pytest.raises(SemanticError):
            ProcessorGrid("p", (0, 2))

    def test_empty_shape(self):
        with pytest.raises(SemanticError):
            ProcessorGrid("p", ())


class TestDimMapping:
    def test_distributed_requires_axis(self):
        with pytest.raises(SemanticError):
            DimMapping(DistFormat.BLOCK, 8)

    def test_collapsed_rejects_axis(self):
        with pytest.raises(SemanticError):
            DimMapping(DistFormat.COLLAPSED, 8, grid_axis=0)

    def test_bad_extent(self):
        with pytest.raises(SemanticError):
            DimMapping(DistFormat.COLLAPSED, 0)


class TestLayout:
    def test_block_size_ceil(self):
        layout = block_layout(extent0=18)
        assert layout.block_size(0) == 5  # ceil(18/4)

    def test_owner_coord_block(self):
        layout = block_layout()
        assert layout.owner_coord(0, 1) == 0
        assert layout.owner_coord(0, 4) == 0
        assert layout.owner_coord(0, 5) == 1
        assert layout.owner_coord(0, 16) == 3

    def test_owner_coord_cyclic(self):
        layout = Layout(
            "c", ProcessorGrid("q", (3,)),
            (DimMapping(DistFormat.CYCLIC, 10, grid_axis=0),),
        )
        assert [layout.owner_coord(0, i) for i in range(1, 7)] == [0, 1, 2, 0, 1, 2]

    def test_owner_out_of_bounds(self):
        with pytest.raises(SemanticError):
            block_layout().owner_coord(0, 17)

    def test_local_span(self):
        layout = block_layout(extent0=18)
        assert layout.local_span(0, 0) == (1, 5)
        assert layout.local_span(0, 3) == (16, 18)  # ragged last block

    def test_procs_along(self):
        layout = block_layout()
        assert layout.procs_along(0) == 4
        assert layout.procs_along(1) == 2

    def test_distributed_dims(self):
        layout = Layout(
            "g", grid2(),
            (
                DimMapping(DistFormat.COLLAPSED, 8),
                DimMapping(DistFormat.BLOCK, 8, grid_axis=0),
                DimMapping(DistFormat.BLOCK, 8, grid_axis=1),
            ),
        )
        assert layout.distributed_dims == (1, 2)

    def test_duplicate_axis_rejected(self):
        with pytest.raises(SemanticError):
            Layout(
                "a", grid2(),
                (
                    DimMapping(DistFormat.BLOCK, 8, grid_axis=0),
                    DimMapping(DistFormat.BLOCK, 8, grid_axis=0),
                ),
            )

    def test_axis_out_of_range(self):
        with pytest.raises(SemanticError):
            Layout(
                "a", grid2(), (DimMapping(DistFormat.BLOCK, 8, grid_axis=5),)
            )

    def test_replicated(self):
        layout = replicated_layout("r", (4, 4), grid2())
        assert layout.distributed_dims == ()
        assert layout.owner_coord(0, 3) == 0

    def test_same_mapping_ignores_name(self):
        a = block_layout()
        b = Layout("b", grid2(), a.dims)
        assert a.same_mapping(b)

    def test_signature_groups_compatible_layouts(self):
        a = block_layout()
        b = Layout("b", grid2(), a.dims)
        assert a.distribution_signature()[1:] == b.distribution_signature()[1:]

    def test_total_elements(self):
        assert block_layout().total_elements() == 128


class TestOwnershipProperties:
    @given(
        extent=st.integers(1, 200),
        procs=st.integers(1, 16),
        fmt=st.sampled_from([DistFormat.BLOCK, DistFormat.CYCLIC]),
    )
    def test_every_element_has_exactly_one_owner(self, extent, procs, fmt):
        layout = Layout(
            "a",
            ProcessorGrid("p", (procs,)),
            (DimMapping(fmt, extent, grid_axis=0),),
        )
        owners = [layout.owner_coord(0, i) for i in range(1, extent + 1)]
        assert all(0 <= o < procs for o in owners)

    @given(extent=st.integers(1, 200), procs=st.integers(1, 16))
    def test_block_spans_partition_the_dimension(self, extent, procs):
        layout = Layout(
            "a",
            ProcessorGrid("p", (procs,)),
            (DimMapping(DistFormat.BLOCK, extent, grid_axis=0),),
        )
        covered = []
        for coord in range(procs):
            lo, hi = layout.local_span(0, coord)
            covered.extend(range(lo, hi + 1))
        assert covered == list(range(1, extent + 1))

    @given(extent=st.integers(1, 200), procs=st.integers(1, 16))
    def test_block_owner_matches_span(self, extent, procs):
        layout = Layout(
            "a",
            ProcessorGrid("p", (procs,)),
            (DimMapping(DistFormat.BLOCK, extent, grid_axis=0),),
        )
        for i in range(1, extent + 1):
            coord = layout.owner_coord(0, i)
            lo, hi = layout.local_span(0, coord)
            assert lo <= i <= hi
