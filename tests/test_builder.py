"""Programmatic builder tests: built ASTs must behave exactly like their
parsed equivalents."""

from __future__ import annotations

import pytest

from repro.core.pipeline import compile_program
from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.builder import ProgramBuilder, sum_of, sqrt_of
from repro.frontend.printer import unparse
from repro.frontend.parser import parse
from repro.runtime.checker import check_schedule


def build_stencil() -> ast.Program:
    b = ProgramBuilder("built")
    b.param("n", 16)
    b.processors("p", 4)
    a = b.real("a", "n", distribute=("BLOCK",), onto="p")
    w = b.real("w", "n", distribute=("BLOCK",), onto="p")
    with b.do("t", 1, 4):
        b.assign(w["2:n-1"], a["1:n-2"] + a["3:n"])
        b.assign(a["2:n-1"], 0.5 * w["2:n-1"])
    return b.build()


class TestConstruction:
    def test_builds_numbered_program(self):
        program = build_stencil()
        sids = [s.sid for s in program.statements()]
        assert sids == [1, 2, 3]

    def test_matches_parsed_equivalent(self):
        program = build_stencil()
        parsed = parse(
            """PROGRAM built
PARAM n = 16
PROCESSORS p(4)
REAL a(n)
DISTRIBUTE a(BLOCK) ONTO p
REAL w(n)
DISTRIBUTE w(BLOCK) ONTO p
DO t = 1, 4
w(2:n-1) = a(1:n-2) + a(3:n)
a(2:n-1) = 0.5 * w(2:n-1)
END DO
END"""
        )
        assert unparse(program) == unparse(parsed)

    def test_compiles_and_validates(self):
        result = compile_program(build_stencil())
        assert result.call_sites() == 2  # ±1 shifts of a
        check_schedule(result)

    def test_template_alignment(self):
        b = ProgramBuilder("aligned")
        b.param("n", 8)
        b.processors("p", 2, 2)
        t = b.template("t", "n", "n").distribute("BLOCK", "BLOCK", onto="p")
        u = b.real("u", "n", "n", align=t)
        b.assign(u[":", ":"], 1)
        result = compile_program(b.build())
        assert result.info.is_distributed("u")

    def test_scalar_and_reduction(self):
        b = ProgramBuilder("red")
        b.param("n", 8)
        b.processors("p", 2)
        a = b.real("a", "n", distribute=("BLOCK",), onto="p")
        s = b.real("s")
        b.assign(s, sum_of(a["1:n"]))
        result = compile_program(b.build())
        assert result.call_sites_by_kind() == {"reduction": 1}

    def test_intrinsics_and_operators(self):
        b = ProgramBuilder("ops")
        b.param("n", 8)
        a = b.real("a", "n")
        b.assign(a[1], sqrt_of(4) + (-a[2]) / 2 - 1)
        program = b.build()
        text = unparse(program)
        assert "SQRT" in text and "/" in text

    def test_if_else(self):
        b = ProgramBuilder("cond")
        s = b.real("s")
        with b.if_(s.expr > 0) as branch:
            b.assign(s, 1)
            branch.otherwise()
            b.assign(s, 2)
        program = b.build()
        stmt = program.body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        b = ProgramBuilder("cond2")
        s = b.real("s")
        with b.if_(s.expr > 0):
            b.assign(s, 1)
        stmt = b.build().body[0]
        assert stmt.else_body == []

    def test_nested_loops(self):
        b = ProgramBuilder("nest")
        b.param("n", 6)
        a = b.real("a", "n", "n")
        with b.do("i", 1, "n"):
            with b.do("j", 1, "n"):
                b.assign(a["i", "j"], Expr_ij := "i + j")
        loop = b.build().body[0]
        assert isinstance(loop.body[0], ast.Do)

    def test_slice_subscripts(self):
        b = ProgramBuilder("slices")
        b.param("n", 10)
        a = b.real("a", "n")
        b.assign(a[slice(1, "n", 2)], 0)
        stmt = b.build().body[0]
        (sub,) = stmt.lhs.subscripts
        assert isinstance(sub, ast.Triplet)
        assert str(sub.step) == "2"

    def test_bare_colon(self):
        b = ProgramBuilder("colon")
        b.param("n", 10)
        a = b.real("a", "n")
        b.assign(a[":"], 3)
        (sub,) = b.build().body[0].lhs.subscripts
        assert sub == ast.Triplet(None, None, None)

    def test_unclosed_block_rejected(self):
        b = ProgramBuilder("broken")
        ctx = b.do("i", 1, 3)
        ctx.__enter__()
        with pytest.raises(ParseError):
            b.build()

    def test_assign_to_expression_rejected(self):
        b = ProgramBuilder("bad")
        a = b.real("a", "n")
        with pytest.raises(TypeError):
            b.assign(a[1] + 1, 0)
