"""Reference interpreter tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.runtime.interp import Interpreter, initial_arrays, interpret


def run(source: str, seed: int = 1):
    info = elaborate(parse(source))
    return interpret(info, seed)


class TestBasics:
    def test_scalar_assignment(self):
        state = run("PROGRAM t\nREAL s\ns = 2 + 3 * 4\nEND")
        assert state["s"] == 14

    def test_element_assignment(self):
        state = run("PROGRAM t\nREAL a(4)\na(2) = 7\nEND")
        assert state["a"][1] == 7

    def test_section_assignment(self):
        state = run("PROGRAM t\nREAL a(8)\na(2:6:2) = 5\nEND")
        np.testing.assert_array_equal(state["a"][[1, 3, 5]], [5, 5, 5])

    def test_full_colon(self):
        state = run("PROGRAM t\nREAL a(4)\na(:) = 1\nEND")
        np.testing.assert_array_equal(state["a"], np.ones(4))

    def test_shifted_section_read(self):
        state = run(
            "PROGRAM t\nREAL a(6)\nREAL b(6)\na(:) = 2\nb(2:6) = a(1:5)\nEND"
        )
        np.testing.assert_array_equal(state["b"][1:], 2 * np.ones(5))

    def test_do_loop(self):
        state = run("PROGRAM t\nREAL a(5)\nDO i = 1, 5\na(i) = i\nEND DO\nEND")
        np.testing.assert_array_equal(state["a"], [1, 2, 3, 4, 5])

    def test_do_loop_step(self):
        state = run(
            "PROGRAM t\nREAL a(6)\na(:) = 0\nDO i = 1, 6, 2\na(i) = 1\nEND DO\nEND"
        )
        np.testing.assert_array_equal(state["a"], [1, 0, 1, 0, 1, 0])

    def test_if_both_arms(self):
        state = run("PROGRAM t\nREAL s\nREAL q\ns = 1\nIF s > 0 THEN\nq = 10\nELSE\nq = 20\nEND IF\nEND")
        assert state["q"] == 10
        state = run("PROGRAM t\nREAL s\nREAL q\ns = -1\nIF s > 0 THEN\nq = 10\nELSE\nq = 20\nEND IF\nEND")
        assert state["q"] == 20

    def test_sum_reduction(self):
        state = run("PROGRAM t\nREAL a(4)\nREAL s\na(:) = 2\ns = SUM(a(1:4))\nEND")
        assert state["s"] == 8

    def test_maxval_minval(self):
        src = (
            "PROGRAM t\nREAL a(3)\nREAL hi\nREAL lo\n"
            "a(1) = 5\na(2) = -2\na(3) = 9\n"
            "hi = MAXVAL(a(1:3))\nlo = MINVAL(a(1:3))\nEND"
        )
        state = run(src)
        assert state["hi"] == 9 and state["lo"] == -2

    def test_intrinsics(self):
        state = run("PROGRAM t\nREAL s\ns = SQRT(9) + ABS(-2) + MAX(1, 4)\nEND")
        assert state["s"] == pytest.approx(3 + 2 + 4)

    def test_triangular_loops(self):
        state = run(
            "PROGRAM t\nREAL a(4, 4)\na(:, :) = 0\n"
            "DO i = 1, 4\nDO j = i, 4\na(i, j) = 1\nEND DO\nEND DO\nEND"
        )
        assert state["a"].sum() == 10  # upper triangle incl. diagonal


class TestDeterminism:
    def test_initial_state_deterministic(self):
        info = elaborate(parse("PROGRAM t\nREAL a(8)\nREAL b(8)\nEND"))
        s1 = initial_arrays(info, seed=7)
        s2 = initial_arrays(info, seed=7)
        for name in s1:
            np.testing.assert_array_equal(s1[name], s2[name])

    def test_different_seed_different_state(self):
        info = elaborate(parse("PROGRAM t\nREAL a(8)\nEND"))
        s1 = initial_arrays(info, seed=7)
        s2 = initial_arrays(info, seed=8)
        assert not np.array_equal(s1["a"], s2["a"])

    def test_arrays_initialized_nonzero(self):
        info = elaborate(parse("PROGRAM t\nREAL a(8)\nEND"))
        assert (initial_arrays(info)["a"] > 0).all()


class TestErrors:
    def test_unbound_variable(self):
        info = elaborate(parse("PROGRAM t\nREAL s\ns = 1\nEND"))
        interp = Interpreter(info)
        from repro.frontend import ast_nodes as ast

        with pytest.raises(SimulationError):
            interp.eval_expr(ast.VarRef("ghost"))

    def test_array_as_index_rejected(self):
        info = elaborate(parse("PROGRAM t\nREAL a(4)\nEND"))
        interp = Interpreter(info)
        from repro.frontend import ast_nodes as ast

        with pytest.raises(SimulationError):
            interp.eval_index(
                ast.ArrayRef("a", (ast.Triplet(None, None, None),))
            )
