"""Candidate-marking (§4.4) tests: the dominator-chain structure of
Claims 4.5/4.6."""

from __future__ import annotations

import pytest

from repro.core.candidates import verify_candidates
from repro.errors import PlacementError
from conftest import analyzed


class TestChainStructure:
    def test_endpoints(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        for e in entries:
            assert e.candidates[0] == e.earliest_pos
            assert e.candidates[-1] == e.latest_pos

    def test_chain_is_dominance_ordered(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        for e in entries:
            for a, b in zip(e.candidates, e.candidates[1:]):
                assert ctx.position_dominates(a, b)
                assert a != b

    def test_every_candidate_dominates_use(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        for e in entries:
            use_pos = ctx.cfg.position_before(e.use.stmt)
            for p in e.candidates:
                assert ctx.position_dominates(p, use_pos)

    def test_chain_never_enters_sibling_loops(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        for e in entries:
            use_loops = set(
                id(l)
                for l in ctx.node_of(ctx.cfg.position_before(e.use.stmt).node_id
                                     if False else e.latest_pos).loops_containing()
            )
            for p in e.candidates:
                node = ctx.node_of(p)
                for loop in node.loops_containing():
                    # any loop containing a candidate must contain the use
                    assert loop.contains_node(e.use.node)

    def test_single_position_when_no_flexibility(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              DO i = 2, n
                a(i) = 1
                b(i) = a(i - 1)
              END DO
            END
            """
        )
        (e,) = entries
        # Carried dep pins Latest just before the use; Earliest lands at
        # the header merge: flexibility only within the iteration.
        assert len(e.candidates) >= 1
        assert e.candidates[-1] == ctx.cfg.position_before(e.use.stmt)

    def test_verify_rejects_tampered_chain(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        e = entries[0]
        e.candidates = list(reversed(e.candidates))
        with pytest.raises(PlacementError):
            verify_candidates(ctx, e)

    def test_verify_rejects_empty(self, fig4_source):
        ctx, entries = analyzed(fig4_source)
        e = entries[0]
        e.candidates = []
        with pytest.raises(PlacementError):
            verify_candidates(ctx, e)

    def test_stencil_candidates_span_iteration_body(self, stencil_source):
        ctx, entries = analyzed(stencil_source)
        a_entry = next(e for e in entries if e.array == "a")
        # Earliest at the time-loop merge, Latest at the consuming nest's
        # preheader: at least the loop-top anchor plus the preheader.
        assert len(a_entry.candidates) >= 2
