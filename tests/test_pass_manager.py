"""Pass-manager framework tests: registry, pipeline configuration,
per-pass traces, dumps, disable/reorder behavior, and the fault-boundary
regressions that used to live in four hand-rolled try/except blocks.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.core import pipeline as pl
from repro.core.context import CompilerOptions
from repro.core.passes import (
    PIPELINES,
    build_pipeline,
    format_pass_list,
    list_passes,
    registered_passes,
    resolve_pass,
)
from repro.core.pipeline import Strategy, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.checker import check_schedule

SOURCE = """
PROGRAM victim
  PARAM n = 12
  PROCESSORS p(3)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DO t = 1, 3
    b(2:n-1) = a(1:n-2) + a(3:n)
    c(2:n-1) = a(1:n-2)
    a(2:n-1) = b(2:n-1) + c(2:n-1)
  END DO
END PROGRAM
"""

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


class TestRegistry:
    def test_standard_passes_registered(self):
        passes = registered_passes()
        assert {
            "analyze", "latest-placement", "earliest-placement",
            "subset", "redundancy", "greedy", "ilp",
        } <= set(passes)

    def test_paper_sections(self):
        passes = registered_passes()
        assert passes["latest-placement"].section == "§4.2"
        assert passes["earliest-placement"].section == "§4.3"
        assert passes["subset"].section == "§4.5"
        assert passes["redundancy"].section == "§4.6"
        assert passes["greedy"].section == "§4.7"
        assert passes["ilp"].section == "§6.1"

    def test_structural_passes_flagged(self):
        passes = registered_passes()
        assert not passes["analyze"].optimization
        assert not passes["latest-placement"].optimization
        assert passes["greedy"].optimization

    def test_unknown_pass_name(self):
        with pytest.raises(ValueError, match="unknown pass 'nope'"):
            resolve_pass("nope")

    def test_list_passes_reports_disabled_state(self):
        rows = list_passes(CompilerOptions(disabled_passes=("greedy",)))
        by_name = {r["name"]: r for r in rows}
        assert not by_name["greedy"]["enabled"]
        assert by_name["subset"]["enabled"]
        assert by_name["analyze"]["enabled"]  # structural: never disabled
        text = format_pass_list(rows)
        assert "§4.7" in text and "greedy" in text


class TestBuildPipeline:
    def test_named_pipelines_match_strategies(self):
        assert PIPELINES["orig"] == ("latest-placement",)
        assert PIPELINES["nored"] == ("earliest-placement",)
        assert PIPELINES["comb"] == ("subset", "redundancy", "greedy")

    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_build_resolves_named_pipeline(self, strategy):
        names = [
            p.name for p in build_pipeline(strategy, CompilerOptions())
        ]
        assert tuple(names) == PIPELINES[strategy.value]

    def test_ilp_search_swaps_the_combiner(self):
        names = [
            p.name for p in build_pipeline(
                Strategy.GLOBAL, CompilerOptions(placement_search="ilp")
            )
        ]
        assert names == ["subset", "redundancy", "ilp"]

    def test_custom_pipeline_overrides_strategy(self):
        opts = CompilerOptions(pass_pipeline=("subset", "greedy"))
        names = [p.name for p in build_pipeline(Strategy.GLOBAL, opts)]
        assert names == ["subset", "greedy"]

    def test_include_analysis_prepends(self):
        names = [
            p.name for p in build_pipeline(
                Strategy.ORIG, CompilerOptions(), include_analysis=True
            )
        ]
        assert names == ["analyze", "latest-placement"]


class TestTraces:
    def test_one_trace_per_executed_pass(self):
        result = compile_program(SOURCE, strategy="comb")
        names = [t.name for t in result.pass_traces]
        assert names == ["analyze", "subset", "redundancy", "greedy"]
        for trace in result.pass_traces:
            assert trace.wall_s >= 0
            assert not trace.degraded
            for counter in ("deactivated", "eliminated", "cache_hits"):
                assert counter in trace.stats

    def test_orig_traces(self):
        result = compile_program(SOURCE, strategy="orig")
        assert [t.name for t in result.pass_traces] == [
            "analyze", "latest-placement",
        ]

    def test_disabled_pass_leaves_no_trace(self):
        result = compile_program(
            SOURCE, strategy="comb",
            options=CompilerOptions(disabled_passes=("redundancy",)),
        )
        names = [t.name for t in result.pass_traces]
        assert names == ["analyze", "subset", "greedy"]

    def test_degraded_pass_trace_flagged(self, monkeypatch):
        def boom(*a, **k):
            raise RuntimeError("injected chaos")

        monkeypatch.setattr(pl, "greedy_choose", boom)
        result = compile_program(SOURCE, strategy="comb")
        trace = {t.name: t for t in result.pass_traces}["greedy"]
        assert trace.degraded
        assert result.degraded

    def test_trace_to_dict_is_json_ready(self):
        result = compile_program(SOURCE, strategy="comb")
        payload = json.dumps([t.to_dict() for t in result.pass_traces])
        records = json.loads(payload)
        assert records[0]["pass"] == "analyze"
        assert set(records[0]) == {
            "pass", "section", "wall_s", "degraded", "stats",
        }


class TestDumps:
    def test_dump_after_writes_state(self):
        stream = io.StringIO()
        result = compile_program(
            SOURCE, strategy="comb",
            dump_after=("subset", "greedy"), dump_stream=stream,
        )
        text = stream.getvalue()
        assert "== dump after pass 'subset'" in text
        assert "== dump after pass 'greedy'" in text
        assert "CommSet over" in text
        assert "schedule:" in text  # greedy dump includes the schedule
        assert result.placed


class TestDisableAndReorder:
    def test_disabling_combiner_degrades_to_orig_schedule(self):
        """With no combining pass the terminal fallback emits the Latest
        placement — exactly the ORIG schedule, eliminations abandoned."""
        disabled = compile_program(
            SOURCE, strategy="comb",
            options=CompilerOptions(disabled_passes=("greedy",)),
        )
        orig = compile_program(SOURCE, strategy="orig")
        assert not disabled.eliminated_entries()
        assert disabled.stats.get("redundant", 0) == 0
        assert [pc.position for pc in disabled.placed] == [
            pc.position for pc in orig.placed
        ]
        assert not disabled.degradations  # disabling is not a fault

    def test_custom_pipeline_compiles_soundly(self):
        result = compile_program(
            SOURCE, strategy="comb",
            options=CompilerOptions(pass_pipeline=("redundancy", "greedy")),
        )
        assert [t.name for t in result.pass_traces] == [
            "analyze", "redundancy", "greedy",
        ]
        check_schedule(result)

    @pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
    @pytest.mark.parametrize(
        "disabled", ["subset", "redundancy", "greedy"]
    )
    def test_any_single_pass_disabled_stays_sound(
        self, bench_name, disabled
    ):
        """Satellite property: every benchmark still produces an
        oracle-accepted schedule with any one optimization pass off."""
        result = compile_program(
            BENCHMARKS[bench_name], params=SMALL[bench_name],
            strategy="comb",
            options=CompilerOptions(disabled_passes=(disabled,)),
        )
        assert not result.degradations
        stats = check_schedule(result)
        assert stats.reads_checked > 0


class TestFaultBoundaryRegressions:
    def test_midpass_earliest_fault_yields_sound_latest(self, monkeypatch):
        """Regression for the folded EARLIEST boundary: a crash *midway*
        through the nored placement (after some forward eliminations may
        already be marked) must roll entries back and emit the Latest
        schedule, not a half-eliminated hybrid."""
        real = pl.subsumes_at
        calls = {"n": 0}

        def dies_late(ctx, winner, loser, pos):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("injected chaos")
            return real(ctx, winner, loser, pos)

        monkeypatch.setattr(pl, "subsumes_at", dies_late)
        result = compile_program(SOURCE, strategy="nored")
        assert calls["n"] > 2, "injection point never reached"
        events = [
            e for e in result.degradations
            if e.pass_name == "earliest-placement"
        ]
        assert events
        assert not result.eliminated_entries()
        assert result.stats.get("redundant", 0) == 0
        orig = compile_program(SOURCE, strategy="orig")
        assert [pc.position for pc in result.placed] == [
            pc.position for pc in orig.placed
        ]
        check_schedule(result)

    def test_strict_mode_reraises_midpass_fault(self, monkeypatch):
        real = pl.subsumes_at
        calls = {"n": 0}

        def dies_late(ctx, winner, loser, pos):
            calls["n"] += 1
            if calls["n"] > 2:
                raise RuntimeError("injected chaos")
            return real(ctx, winner, loser, pos)

        monkeypatch.setattr(pl, "subsumes_at", dies_late)
        with pytest.raises(RuntimeError, match="injected chaos"):
            compile_program(
                SOURCE, strategy="nored",
                options=CompilerOptions(strict=True),
            )
