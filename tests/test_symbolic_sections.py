"""Symbolic section (SymDim/SymSection) tests."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.affine import Affine
from repro.sections.symbolic import SymDim, SymSection


def const_dim(lo: int, hi: int, step: int = 1) -> SymDim:
    return SymDim(Affine.constant(lo), Affine.constant(hi), step)


class TestSymDim:
    def test_point(self):
        d = SymDim.point(Affine.symbol("i"))
        assert d.is_point
        assert d.span_const() == 0
        assert d.count_const() == 1

    def test_span_const_with_symbols(self):
        lo = Affine.symbol("i") - 1
        hi = Affine.symbol("i") + 2
        d = SymDim(lo, hi)
        assert d.span_const() == 3
        assert d.count_const() == 4

    def test_span_non_const(self):
        d = SymDim(Affine.constant(1), Affine.symbol("n"))
        assert d.span_const() is None
        assert d.count_const() is None

    def test_contains_constant_offsets(self):
        big = const_dim(1, 10)
        assert big.contains(const_dim(3, 7))
        assert not big.contains(const_dim(0, 7))
        assert not big.contains(const_dim(3, 11))

    def test_contains_symbolic_same_offset(self):
        i = Affine.symbol("i")
        big = SymDim(i - 1, i + 1)
        small = SymDim(i, i)
        assert big.contains(small)
        assert not small.contains(big)

    def test_contains_mismatched_symbols_conservative(self):
        a = SymDim(Affine.symbol("i"), Affine.symbol("i"))
        b = SymDim(Affine.symbol("j"), Affine.symbol("j"))
        assert not a.contains(b)

    def test_contains_strides(self):
        odds = const_dim(1, 15, 2)
        all_ = const_dim(1, 15, 1)
        assert all_.contains(odds)
        assert not odds.contains(all_)
        assert not odds.contains(const_dim(2, 8, 2))

    def test_inexact_never_subsumes(self):
        approx = SymDim(Affine.constant(1), Affine.constant(10), 1, exact=False)
        assert not approx.contains(const_dim(3, 4))
        # An exact dim MAY subsume an inexact one: the real footprint is a
        # subset of the inexact box, so box containment is sound.
        assert const_dim(1, 10).contains(
            SymDim(Affine.constant(3), Affine.constant(4), 1, exact=False)
        )

    def test_hull_constant(self):
        h = const_dim(1, 4).hull(const_dim(6, 9))
        assert h is not None
        assert (h.lo.const, h.hi.const) == (1, 9)

    def test_hull_symbolic_offsets(self):
        i = Affine.symbol("i")
        h = SymDim(i - 1, i).hull(SymDim(i, i + 1))
        assert h is not None
        assert h.lo == i - 1 and h.hi == i + 1

    def test_hull_incomparable(self):
        a = SymDim(Affine.symbol("i"), Affine.symbol("i"))
        b = SymDim(Affine.symbol("j"), Affine.symbol("j"))
        assert a.hull(b) is None


class TestWiden:
    def test_widen_point_over_loop(self):
        # subscript i-1, i in 2..9 -> 1..8
        d = SymDim.point(Affine.symbol("i") - 1)
        w = d.widen("i", Affine.constant(2), 1, 7, True)
        assert w.lo == Affine.constant(1)
        assert w.hi == Affine.constant(8)
        assert w.step == 1 and w.exact

    def test_widen_strided_loop(self):
        # subscript j, j = 1, 15, 2
        d = SymDim.point(Affine.symbol("j"))
        w = d.widen("j", Affine.constant(1), 2, 7, True)
        assert (w.lo.const, w.hi.const, w.step) == (1, 15, 2)

    def test_widen_scaled_coefficient(self):
        # subscript 2*k + 1, k = 0..7 -> 1, 3, ..., 15
        d = SymDim.point(Affine.symbol("k").scaled(2) + 1)
        w = d.widen("k", Affine.constant(0), 1, 7, True)
        assert (w.lo.const, w.hi.const, w.step) == (1, 15, 2)

    def test_widen_negative_coefficient(self):
        # subscript 10 - i, i = 1..4 -> 6..9
        d = SymDim.point(10 - Affine.symbol("i"))
        w = d.widen("i", Affine.constant(1), 1, 3, True)
        assert (w.lo.const, w.hi.const) == (6, 9)

    def test_widen_uninvolved_var_is_identity(self):
        d = SymDim.point(Affine.symbol("i"))
        assert d.widen("j", Affine.constant(1), 1, 3, True) is d

    def test_widen_twice_inexact(self):
        d = SymDim.point(Affine.symbol("i") + Affine.symbol("j"))
        w1 = d.widen("j", Affine.constant(0), 1, 3, True)
        w2 = w1.widen("i", Affine.constant(0), 1, 3, True)
        assert not w2.exact
        # But the box still covers everything.
        assert (w2.lo.const, w2.hi.const) == (0, 6)

    def test_widen_inexact_trips_flagged(self):
        d = SymDim.point(Affine.symbol("i"))
        w = d.widen("i", Affine.constant(1), 1, 5, False)
        assert not w.exact

    @given(
        lo=st.integers(0, 5),
        step=st.integers(1, 3),
        trips=st.integers(0, 6),
        coeff=st.integers(-3, 3).filter(lambda c: c != 0),
        offset=st.integers(-5, 5),
    )
    def test_widen_matches_enumeration(self, lo, step, trips, coeff, offset):
        d = SymDim.point(Affine.symbol("v").scaled(coeff) + offset)
        w = d.widen("v", Affine.constant(lo), step, trips, True)
        values = {coeff * (lo + step * k) + offset for k in range(trips + 1)}
        assert w.lo.const == min(values)
        assert w.hi.const == max(values)
        # exact single-var widening: element set must match exactly
        got = set(range(w.lo.const, w.hi.const + 1, w.step))
        assert got == values


class TestSymSection:
    def _sec(self, name, *dims):
        return SymSection(name, tuple(dims))

    def test_contains(self):
        a = self._sec("a", const_dim(1, 10), const_dim(1, 10))
        b = self._sec("a", const_dim(2, 5), const_dim(1, 10, 2))
        assert a.contains(b)
        assert not b.contains(a)

    def test_contains_requires_same_array(self):
        a = self._sec("a", const_dim(1, 10))
        b = self._sec("b", const_dim(2, 5))
        assert not a.contains(b)

    def test_same_shape_ignores_unit_dims(self):
        g = self._sec(
            "g", SymDim.point(Affine.symbol("i")), const_dim(3, 10), const_dim(2, 9)
        )
        glast = self._sec("glast", const_dim(3, 10), const_dim(2, 9))
        assert g.same_shape(glast)

    def test_same_shape_spans_must_match(self):
        a = self._sec("a", const_dim(1, 8))
        b = self._sec("b", const_dim(1, 9))
        assert not a.same_shape(b)

    def test_concretize(self):
        i = Affine.symbol("i")
        sec = self._sec("a", SymDim(i - 1, i - 1), const_dim(1, 6, 1))
        rsd = sec.concretize({"i": 4}, (8, 6))
        assert rsd.dims[0].lo == 3 and rsd.dims[0].hi == 3
        assert rsd.dims[1].count() == 6

    def test_concretize_clips_to_extent(self):
        sec = self._sec("a", const_dim(-2, 100))
        rsd = sec.concretize({}, (8,))
        assert (rsd.dims[0].lo, rsd.dims[0].hi) == (1, 8)

    def test_max_count_point_dim_is_one(self):
        sec = self._sec("a", SymDim.point(Affine.symbol("i")), const_dim(1, 6))
        assert sec.max_count({"i": (1, 100)}) == 6

    def test_hull(self):
        a = self._sec("a", const_dim(1, 4))
        b = self._sec("a", const_dim(5, 8))
        h = a.hull(b)
        assert h is not None and h.dims[0].count_const() == 8

    def test_str(self):
        sec = self._sec("a", const_dim(1, 4, 2))
        assert "a[" in str(sec)
