"""End-to-end reproductions of the paper's worked examples (Figures 1-4)
and its headline claims."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Strategy, compile_all_strategies, compile_program
from repro.evaluation.programs import BENCHMARKS


class TestFigure4:
    """orig emits 4 messages, earliest-placement redundancy keeps 3
    (b1@1, b2@2, a2@7), the global algorithm emits a single combined
    message covering everything."""

    def test_counts(self, fig4_source):
        results = compile_all_strategies(fig4_source)
        assert results[Strategy.ORIG].call_sites() == 4
        assert results[Strategy.EARLIEST].call_sites() == 3
        assert results[Strategy.GLOBAL].call_sites() == 1

    def test_global_group_covers_all_four(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        (group,) = result.placed
        members = {e.label for e in group.entries}
        absorbed = {a.label for e in group.entries for a in e.absorbed}
        assert len(members) == 2 and len(absorbed) == 2

    def test_earliest_placement_misses_b1_b2(self, fig4_source):
        """The paper's §4.6 point: earliest placement cannot eliminate b1
        even though b2 subsumes it — both of b's messages survive."""
        result = compile_program(fig4_source, strategy="nored")
        surviving_b = [e for e in result.entries if e.array == "b" and e.alive]
        assert len(surviving_b) == 2

    def test_global_eliminates_b1_entirely(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        b_entries = [e for e in result.entries if e.array == "b"]
        dead = [e for e in b_entries if not e.alive]
        assert len(dead) == 1


class TestFigure1Gravity:
    """Figure 1's motivation: 8 NN messages combine into 4, 8 global sums
    into 2 parallel sets."""

    def test_nnc_combining(self):
        result = compile_program(BENCHMARKS["gravity"], strategy="comb")
        assert result.call_sites_by_kind()["shift"] == 4
        # each NNC group pairs the g-plane exchange with glast's
        shift_groups = [p for p in result.placed if p.kind == "shift"]
        for group in shift_groups:
            assert {e.array for e in group.entries} == {"g", "glast"}

    def test_sum_combining(self):
        result = compile_program(BENCHMARKS["gravity"], strategy="comb")
        assert result.call_sites_by_kind()["reduction"] == 2
        red_groups = [p for p in result.placed if p.kind == "reduction"]
        assert sorted(len(g.entries) for g in red_groups) == [4, 4]


class TestFigure2Shallow:
    """orig = 20 exchanges, earliest = 14, global schedule = 8."""

    def test_counts(self):
        results = compile_all_strategies(BENCHMARKS["shallow"])
        assert results[Strategy.ORIG].call_sites() == 20
        assert results[Strategy.EARLIEST].call_sites() == 14
        assert results[Strategy.GLOBAL].call_sites() == 8

    def test_global_groups_pair_by_direction(self):
        result = compile_program(BENCHMARKS["shallow"], strategy="comb")
        for group in result.placed:
            mappings = {e.pattern.mapping for e in group.entries}
            assert len(mappings) == 1  # one direction per message


FIG3_F90 = """
PROGRAM fig3
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO pr
  DISTRIBUTE b(BLOCK) ONTO pr
  DISTRIBUTE c(BLOCK) ONTO pr
  a(:) = 3
  b(:) = 4
  c(2:n) = a(1:n-1) + b(1:n-1)
END PROGRAM
"""

FIG3_FUSED = """
PROGRAM fig3f
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO pr
  DISTRIBUTE b(BLOCK) ONTO pr
  DISTRIBUTE c(BLOCK) ONTO pr
  DO i = 1, n
    a(i) = 3
    b(i) = 4
  END DO
  DO i = 2, n
    c(i) = a(i-1) + b(i-1)
  END DO
END PROGRAM
"""


class TestFigure3SyntaxSensitivity:
    """Earliest placement is sensitive to the scalarizer splitting the
    a/b definitions into separate loops; the global algorithm combines
    the two messages in every version."""

    def test_earliest_f90_version_cannot_combine(self):
        result = compile_program(FIG3_F90, strategy="nored")
        # two separate messages at two different earliest points
        assert result.call_sites() == 2
        positions = {pc.position for pc in result.placed}
        assert len(positions) == 2

    def test_global_combines_both_versions(self):
        for src in (FIG3_F90, FIG3_FUSED):
            result = compile_program(src, strategy="comb")
            assert result.call_sites() == 1, src
            (group,) = result.placed
            assert {e.array for e in group.entries} == {"a", "b"}

    def test_orig_emits_two_messages_either_way(self):
        for src in (FIG3_F90, FIG3_FUSED):
            result = compile_program(src, strategy="orig")
            assert result.call_sites() == 2


class TestHeadlineClaims:
    """Abstract: 'static message counts are reduced by a factor of
    roughly 2-9'."""

    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    def test_monotone_improvement(self, program):
        results = compile_all_strategies(BENCHMARKS[program])
        orig = results[Strategy.ORIG].call_sites()
        nored = results[Strategy.EARLIEST].call_sites()
        comb = results[Strategy.GLOBAL].call_sites()
        assert orig >= nored >= comb >= 1

    def test_reduction_factors_in_paper_band(self):
        factors = []
        for program in BENCHMARKS:
            results = compile_all_strategies(BENCHMARKS[program])
            factors.append(
                results[Strategy.ORIG].call_sites()
                / results[Strategy.GLOBAL].call_sites()
            )
        assert max(factors) > 8  # hydflo flux: ~8.7x
        assert min(factors) >= 2  # everything at least halves
