"""Parser tests: declarations, statements, expressions, and errors."""

from __future__ import annotations

import pytest

from repro.errors import ParseError
from repro.frontend import ast_nodes as ast
from repro.frontend.parser import parse


def parse_body(stmts: str, decls: str = "") -> ast.Program:
    return parse(f"PROGRAM t\n{decls}\n{stmts}\nEND PROGRAM")


class TestDeclarations:
    def test_param(self):
        prog = parse("PROGRAM t\nPARAM n = 8\nEND")
        (decl,) = prog.decls
        assert isinstance(decl, ast.ParamDecl)
        assert decl.name == "n" and decl.value == 8

    def test_param_negative(self):
        prog = parse("PROGRAM t\nPARAM k = -3\nEND")
        assert prog.decls[0].value == -3

    def test_processors(self):
        prog = parse("PROGRAM t\nPROCESSORS p(4, 2)\nEND")
        (decl,) = prog.decls
        assert isinstance(decl, ast.ProcessorsDecl)
        assert len(decl.shape) == 2

    def test_template_and_distribute(self):
        prog = parse(
            "PROGRAM t\nPARAM n = 8\nPROCESSORS p(2)\nTEMPLATE tm(n)\n"
            "DISTRIBUTE tm(BLOCK) ONTO p\nEND"
        )
        dist = prog.decls[-1]
        assert isinstance(dist, ast.DistributeDecl)
        assert dist.formats == ("BLOCK",)
        assert dist.onto == "p"

    def test_distribute_formats(self):
        prog = parse(
            "PROGRAM t\nPROCESSORS p(2)\nTEMPLATE tm(8, 8, 8)\n"
            "DISTRIBUTE tm(*, BLOCK, CYCLIC) ONTO p\nEND"
        )
        assert prog.decls[-1].formats == ("*", "BLOCK", "CYCLIC")

    def test_array_decl(self):
        prog = parse("PROGRAM t\nPARAM n = 4\nREAL a(n, n)\nEND")
        arr = prog.decls[-1]
        assert isinstance(arr, ast.ArrayDecl)
        assert arr.elem_type == "REAL" and len(arr.dims) == 2

    def test_scalar_decl(self):
        prog = parse("PROGRAM t\nINTEGER k\nEND")
        assert isinstance(prog.decls[0], ast.ScalarDecl)

    def test_inline_align_splices_decl(self):
        prog = parse(
            "PROGRAM t\nPARAM n = 4\nTEMPLATE tm(n)\nREAL a(n) ALIGN WITH tm\nEND"
        )
        kinds = [type(d).__name__ for d in prog.decls]
        assert kinds == ["ParamDecl", "TemplateDecl", "ArrayDecl", "AlignDecl"]
        align = prog.decls[-1]
        assert align.array == "a" and align.target == "tm"

    def test_standalone_align(self):
        prog = parse("PROGRAM t\nREAL a(4)\nALIGN a WITH b\nEND")
        assert isinstance(prog.decls[-1], ast.AlignDecl)

    def test_bad_distribute_format(self):
        with pytest.raises(ParseError):
            parse("PROGRAM t\nDISTRIBUTE a(FOO) ONTO p\nEND")


class TestStatements:
    def test_assign_scalar(self):
        prog = parse_body("s = 1", "REAL s")
        stmt = prog.body[0]
        assert isinstance(stmt, ast.Assign)
        assert isinstance(stmt.lhs, ast.VarRef)

    def test_assign_element(self):
        prog = parse_body("a(3) = 1", "REAL a(8)")
        assert isinstance(prog.body[0].lhs, ast.ArrayRef)

    def test_assign_section(self):
        prog = parse_body("a(1:8:2) = 0", "REAL a(8)")
        (sub,) = prog.body[0].lhs.subscripts
        assert isinstance(sub, ast.Triplet)

    def test_bare_colon_subscript(self):
        prog = parse_body("a(:) = 0", "REAL a(8)")
        (sub,) = prog.body[0].lhs.subscripts
        assert sub.lo is None and sub.hi is None and sub.step is None

    def test_do_loop_default_step(self):
        prog = parse_body("DO i = 1, 8\na(i) = 0\nEND DO", "REAL a(8)")
        loop = prog.body[0]
        assert isinstance(loop, ast.Do)
        assert isinstance(loop.step, ast.Num) and loop.step.value == 1

    def test_do_loop_explicit_step(self):
        prog = parse_body("DO i = 1, 8, 2\na(i) = 0\nEND DO", "REAL a(8)")
        assert prog.body[0].step.value == 2

    def test_nested_loops(self):
        prog = parse_body(
            "DO i = 1, 4\nDO j = 1, 4\na(i) = j\nEND DO\nEND DO", "REAL a(8)"
        )
        outer = prog.body[0]
        inner = outer.body[0]
        assert isinstance(inner, ast.Do) and inner.var == "j"

    def test_if_then_else(self):
        prog = parse_body(
            "IF s > 0 THEN\ns = 1\nELSE\ns = 2\nEND IF", "REAL s"
        )
        stmt = prog.body[0]
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        prog = parse_body("IF s > 0 THEN\ns = 1\nEND IF", "REAL s")
        assert prog.body[0].else_body == []

    def test_statement_ids_are_preorder(self):
        prog = parse_body(
            "DO i = 1, 4\na(i) = 0\nEND DO\ns = 1", "REAL a(8)\nREAL s"
        )
        sids = [stmt.sid for stmt in prog.statements()]
        assert sids == sorted(sids) and sids[0] == 1


class TestExpressions:
    def _rhs(self, text: str) -> ast.Expr:
        prog = parse_body(f"s = {text}", "REAL s\nREAL a(8)\nREAL b(8, 8)")
        return prog.body[0].rhs

    def test_precedence_mul_over_add(self):
        expr = self._rhs("1 + 2 * 3")
        assert isinstance(expr, ast.BinOp) and expr.op == "+"
        assert isinstance(expr.right, ast.BinOp) and expr.right.op == "*"

    def test_parens(self):
        expr = self._rhs("(1 + 2) * 3")
        assert expr.op == "*"

    def test_unary_minus(self):
        expr = self._rhs("-a(1)")
        assert isinstance(expr, ast.UnOp) and expr.op == "-"

    def test_unary_plus_is_noop(self):
        expr = self._rhs("+3")
        assert isinstance(expr, ast.Num)

    def test_comparison(self):
        expr = self._rhs("1 <= 2")
        assert expr.op == "<="

    def test_logic(self):
        expr = self._rhs("1 < 2 AND NOT 3 > 4 OR 5 == 5")
        assert expr.op == "OR"

    def test_reduction_sum(self):
        expr = self._rhs("SUM(a(1:8))")
        assert isinstance(expr, ast.Reduction) and expr.op == "SUM"

    def test_reduction_maxval_minval(self):
        assert self._rhs("MAXVAL(a(:))").op == "MAX"
        assert self._rhs("MINVAL(a(:))").op == "MIN"

    def test_reduction_requires_array_arg(self):
        with pytest.raises(ParseError):
            self._rhs("SUM(1 + 2)")

    def test_intrinsic(self):
        expr = self._rhs("SQRT(a(1))")
        assert isinstance(expr, ast.Intrinsic) and expr.name == "SQRT"

    def test_intrinsic_two_args(self):
        expr = self._rhs("MOD(a(1), 4)")
        assert len(expr.args) == 2

    def test_unknown_applied_name_is_array_ref(self):
        expr = self._rhs("b(1, 2)")
        assert isinstance(expr, ast.ArrayRef)

    def test_section_in_rhs(self):
        expr = self._rhs("SUM(b(1, 1:8:2))")
        assert isinstance(expr.arg.subscripts[1], ast.Triplet)


class TestErrors:
    def test_missing_end(self):
        with pytest.raises(ParseError):
            parse("PROGRAM t\ns = 1\n")

    def test_missing_then(self):
        with pytest.raises(ParseError):
            parse("PROGRAM t\nIF x > 0\nx = 1\nEND IF\nEND")

    def test_garbage_statement(self):
        with pytest.raises(ParseError):
            parse("PROGRAM t\n= 4\nEND")

    def test_unclosed_paren(self):
        with pytest.raises(ParseError):
            parse("PROGRAM t\ns = (1 + 2\nEND")

    def test_walk_expr_covers_subscripts(self):
        prog = parse_body("s = b(i0 + 1, 2)", "REAL s\nREAL b(8, 8)\nREAL i0")
        names = [
            n.name for n in ast.walk_expr(prog.body[0].rhs)
            if isinstance(n, ast.VarRef)
        ]
        assert "i0" in names
