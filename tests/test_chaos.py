"""Self-healing transport suite: chaos fault injection, wire
integrity, and rank crash recovery.

The contract under test: with a seeded :class:`FaultPlan` armed, every
run either (a) completes with final arrays bitwise-identical to the
inline oracle — repairing drops, duplicates, corruption, delays, and
reordering through the checksum/dedup/NACK machinery, and restarting
crashed ranks from checkpoints — or (b) fails *structurally*
(``DeadlockError`` with fault context, or a recorded W07xx degradation
to the inline backend, which again yields identical arrays).  A silent
wrong answer is never acceptable.  Clean runs pay for integrity but
never repair: a checksum mismatch without chaos is a hard error.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compile_program
from repro.errors import (
    DEADLOCK_DEGRADED_CODE,
    RANK_RESTART_CODE,
    RESTARTS_EXHAUSTED_CODE,
)
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.spmd import SPMDExecutor, execute_spmd
from repro.transport import (
    ChaosTransport,
    DeadlockError,
    FaultPlan,
    KINDS,
    RankCrashError,
    RuntimeDegradationEvent,
    make_transport,
)
from repro.transport.integrity import ChaosState, _roll
from repro.transport.lowering import lower_comm

SMALL = {"n": 8, "nsteps": 2, "pr": 2, "pc": 2}

DIAGONAL_SRC = """
PROGRAM diag
  PARAM n = 8
  PROCESSORS p(2, 2)
  REAL a(n, n)
  REAL b(n, n)
  DISTRIBUTE a(BLOCK, BLOCK) ONTO p
  DISTRIBUTE b(BLOCK, BLOCK) ONTO p
  DO k = 1, 2
    a(2:n, 2:n) = b(1:n-1, 1:n-1)
    b(2:n, 2:n) = a(2:n, 2:n) * 0.5
  END DO
END
"""


@pytest.fixture(scope="module")
def shallow():
    result = compile_program(BENCHMARKS["shallow"], params=SMALL)
    oracle, _ = execute_spmd(result, transport="inline")
    return result, oracle


@pytest.fixture(scope="module")
def diagonal():
    result = compile_program(DIAGONAL_SRC)
    oracle, _ = execute_spmd(result, transport="inline")
    return result, oracle


def _identical(arrays, oracle) -> bool:
    return set(arrays) == set(oracle) and all(
        np.array_equal(arrays[k], oracle[k]) for k in oracle
    )


# ---------------------------------------------------------------------------
# FaultPlan / ChaosState
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_parse_roundtrip(self):
        plan = FaultPlan.parse("seed=7,drop=0.05,corrupt=0.02,crash=0.5,"
                               "crash_budget=2")
        assert plan.seed == 7
        assert plan.drop == pytest.approx(0.05)
        assert plan.crash_budget == 2
        again = FaultPlan.parse(",".join(
            f"{k}={v}" for k, v in plan.as_dict().items()
        ))
        assert again == plan

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="bad chaos spec"):
            FaultPlan.parse("drop=0.1,explode=1.0")
        with pytest.raises(ValueError, match="bad chaos spec"):
            FaultPlan.parse("just-a-word")

    def test_single_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.single("gamma_ray")

    def test_rolls_are_deterministic_pure_functions(self):
        # Same event -> same draw, independent of call order; the fault
        # set must be identical across interleavings and replays.
        draws = [_roll(3, "drop", 0, 1, seq) for seq in range(64)]
        assert draws == [_roll(3, "drop", 0, 1, seq) for seq in range(64)]
        assert draws != [_roll(4, "drop", 0, 1, seq) for seq in range(64)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_crash_budget_is_shared_and_bounded(self):
        state = ChaosState(FaultPlan(crash=1.0, crash_budget=2), 4)
        fired = sum(
            1 for seq in range(50) if state.fires("crash", 0, 1, seq)
        )
        assert fired == 2  # rate 1.0, but the budget caps injections
        assert state.ledger()[0]["crash"] == 2
        assert state.injected_total() == 2


# ---------------------------------------------------------------------------
# Single-fault-class equivalence: every kind, both concurrent backends
# ---------------------------------------------------------------------------


class TestSingleFaultEquivalence:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_healed_runs_are_bitwise_identical(
        self, backend, kind, shallow
    ):
        result, oracle = shallow
        plan = FaultPlan.single(kind, seed=3, rate=0.25)
        arrays, stats = execute_spmd(
            result, transport=backend, chaos=plan, watchdog_s=15.0
        )
        # A completed run has already passed the executor's exact
        # per-operation wire parity asserts (retransmits are ledgered
        # separately), so bitwise identity is the remaining claim.
        assert _identical(arrays, oracle)
        if kind == "crash":
            assert stats.rank_restarts >= 1
            assert stats.degradations
            assert stats.degradations[0]["code"] == RANK_RESTART_CODE

    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_mixed_plan_with_crash(self, backend, diagonal):
        result, oracle = diagonal
        plan = FaultPlan(
            seed=5, drop=0.15, dup=0.15, corrupt=0.15, reorder=0.15,
            crash=1.0, crash_budget=1,
        )
        arrays, stats = execute_spmd(
            result, transport=backend, chaos=plan, watchdog_s=15.0
        )
        assert _identical(arrays, oracle)
        assert stats.faults_injected > 0
        assert stats.rank_restarts >= 1

    def test_detection_counters_reach_runtime_stats(self, shallow):
        result, oracle = shallow
        plan = FaultPlan(seed=3, drop=0.25, corrupt=0.25)
        arrays, stats = execute_spmd(
            result, transport="threaded", chaos=plan, watchdog_s=15.0
        )
        assert _identical(arrays, oracle)
        assert stats.faults_injected > 0
        assert stats.faults_detected > 0
        assert stats.retransmits > 0
        d = stats.as_dict()
        for key in ("faults_injected", "faults_detected", "retransmits",
                    "rank_restarts", "recovery_s", "degradations"):
            assert key in d


# ---------------------------------------------------------------------------
# Degradation ladder
# ---------------------------------------------------------------------------


class TestDegradationLadder:
    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_restart_budget_exhaustion_degrades_to_inline(
        self, backend, shallow
    ):
        result, oracle = shallow
        plan = FaultPlan(seed=1, crash=1.0, crash_budget=50)
        arrays, stats = execute_spmd(
            result, transport=backend, chaos=plan, watchdog_s=15.0,
            max_rank_restarts=1,
        )
        assert _identical(arrays, oracle)  # inline fallback, still exact
        assert stats.degradations
        event = stats.degradations[-1]
        assert event["code"] == RESTARTS_EXHAUSTED_CODE
        assert event["reason"] == "restarts_exhausted"
        assert event["fallback"] == "inline"

    def test_rank_crash_error_is_structured(self, shallow):
        result, _ = shallow
        plan = FaultPlan(seed=1, crash=1.0, crash_budget=50)
        executor = SPMDExecutor(
            result, transport="threaded", chaos=plan, watchdog_s=15.0,
            max_rank_restarts=0,
        )
        try:
            with pytest.raises(RankCrashError) as err:
                executor.run()
        finally:
            executor.close()
        d = err.value.to_dict()
        assert d["error"] == "rank_crash"
        assert d["max_restarts"] == 0
        assert d["dead_ranks"]

    def test_clean_runs_never_degrade(self, shallow):
        result, oracle = shallow
        arrays, stats = execute_spmd(result, transport="threaded")
        assert _identical(arrays, oracle)
        assert stats.degradations == []
        assert stats.faults_injected == 0
        assert stats.retransmits == 0

    def test_degradation_event_codes(self):
        for reason, code in [
            ("rank_restart", RANK_RESTART_CODE),
            ("deadlock", DEADLOCK_DEGRADED_CODE),
            ("restarts_exhausted", RESTARTS_EXHAUSTED_CODE),
        ]:
            event = RuntimeDegradationEvent(
                reason=reason, backend="threaded", detail="x",
                fallback="inline",
            )
            assert event.code == code
            diag = event.diagnostic()
            assert diag.severity == "warning"
            assert diag.phase == "runtime"
            assert event.to_dict()["code"] == code


# ---------------------------------------------------------------------------
# Satellites: pool conservation, deadlock fault context, no zombies
# ---------------------------------------------------------------------------


class TestPoolConservation:
    @pytest.mark.parametrize("plan", [
        None,
        FaultPlan(seed=3, drop=0.25, dup=0.25, reorder=0.25),
        FaultPlan(seed=3, corrupt=0.25, crash=1.0, crash_budget=1),
    ], ids=["clean", "lossy", "crashy"])
    def test_every_rented_buffer_returns_to_its_pool(self, plan, shallow):
        # The leak regression: an abandoned attempt (crash recovery) or
        # an injected drop/dup must never strand a pooled buffer.  At
        # quiescence each pool holds exactly as many free buffers as it
        # ever allocated (misses == allocations).
        result, _ = shallow
        transport = make_transport(
            "threaded", 4, watchdog_s=15.0, chaos=plan
        )
        inner = transport.inner if isinstance(
            transport, ChaosTransport
        ) else transport
        executor = SPMDExecutor(result, transport=transport)
        try:
            executor.run()
        finally:
            executor.close()
        for pair, pool in inner._pools.items():
            assert pool.free_count() == pool.misses, (
                f"pool {pair}: {pool.free_count()} free buffers but "
                f"{pool.misses} allocated — a wire buffer leaked"
            )
        for rank, pool in enumerate(inner._local_pools):
            assert pool.free_count() == pool.misses


def _tampered_scripts(transport, lowered):
    scripts = transport._scripts_for(lowered)
    for rank in sorted(scripts):
        for rnd in scripts[rank]:
            if rnd["send"]:
                victim = rnd["send"].pop(0)
                return scripts, victim
    raise AssertionError("lowering produced no sends to tamper with")


class TestDeadlockFaultContext:
    def _deadlock(self, backend, chaos):
        result = compile_program(BENCHMARKS["shallow"], params=SMALL)
        executor = SPMDExecutor(
            result, transport=make_transport(
                backend, 4, watchdog_s=1.5, chaos=chaos
            ),
        )
        transport = executor.transport
        if isinstance(transport, ChaosTransport):
            transport = transport.inner
        try:
            ops = [
                op
                for anchor in executor.schedule.anchors
                for op in executor.schedule.ops_at(anchor)
                if op.kind != "reduction"
            ]
            op = ops[0]
            node = executor.result.ctx.node_of(op.position)
            sections = tuple(
                executor._concrete_section(entry, node)
                for entry in op.entries
            )
            plan = executor.planner.compile_op(op, sections)
            lowered = lower_comm(op.kind, plan, len(executor.ranks))
            scripts, _victim = _tampered_scripts(transport, lowered)
            with pytest.raises(DeadlockError) as err:
                transport._dispatch(scripts, lowered.algorithm)
            return err.value
        finally:
            executor.close()

    def test_clean_deadlock_has_no_fault_context(self):
        err = self._deadlock("threaded", None)
        assert err.fault_context is None
        assert "fault_context" not in err.to_dict()

    @pytest.mark.parametrize("backend", ["threaded", "multiprocess"])
    def test_chaos_deadlock_carries_fault_ledger(self, backend):
        err = self._deadlock(
            backend, FaultPlan(seed=3, drop=0.25, corrupt=0.1)
        )
        ctx = err.fault_context
        assert ctx is not None
        assert set(ctx) == {"injected_by_rank", "last_recv_seq"}
        d = err.to_dict()
        assert d["fault_context"] == ctx


class TestNoZombies:
    def test_multiprocess_crash_leaves_no_zombie_processes(self, shallow):
        # Regression: an injected os._exit crash plus recovery plus
        # shutdown must reap every worker — the restarted ones too.
        result, oracle = shallow
        before = {p.pid for p in mp.active_children()}
        plan = FaultPlan(seed=3, crash=1.0, crash_budget=2)
        arrays, stats = execute_spmd(
            result, transport="multiprocess", chaos=plan, watchdog_s=15.0
        )
        assert _identical(arrays, oracle)
        assert stats.rank_restarts >= 1
        leaked = [
            p for p in mp.active_children() if p.pid not in before
        ]
        assert not leaked, f"zombie transport workers: {leaked}"


# ---------------------------------------------------------------------------
# Integrity on clean runs
# ---------------------------------------------------------------------------


class TestCleanIntegrity:
    @pytest.mark.parametrize("backend", ["inline", "threaded",
                                         "multiprocess"])
    def test_integrity_on_and_off_both_exact(self, backend, shallow):
        result, oracle = shallow
        for integrity in (True, False):
            arrays, _stats = execute_spmd(
                result, transport=backend, integrity=integrity
            )
            assert _identical(arrays, oracle)

    def test_chaos_forces_integrity_on(self):
        transport = make_transport(
            "threaded", 4, chaos=FaultPlan(seed=1, drop=0.1),
            integrity=False,
        )
        try:
            assert transport.integrity is True
        finally:
            transport.shutdown()


# ---------------------------------------------------------------------------
# Property: random programs never return a silent wrong answer
# ---------------------------------------------------------------------------

N = 12


@st.composite
def chaos_program(draw):
    """Small random stencil program over one BLOCK array pair."""
    arrays = ["u", "v"]
    lines = []
    for _ in range(draw(st.integers(1, 3))):
        dst = draw(st.sampled_from(arrays))
        src = draw(st.sampled_from(arrays))
        shift = draw(st.integers(-2, 2))
        lo, hi = 3 + shift, N - 2 + shift
        lines.append(f"{dst}(3:{N - 2}) = {src}({lo}:{hi}) + 1.0")
    if draw(st.booleans()):
        lines.append(f"s = SUM(u(1:{N}))")
        lines.append(f"v(3:{N - 2}) = s")
    body = "\n".join(lines)
    if draw(st.booleans()):
        body = f"DO tstep = 1, 2\n{body}\nEND DO"
    decls = "\n".join(
        f"REAL {a}({N})\nDISTRIBUTE {a}(BLOCK) ONTO p" for a in arrays
    )
    return (
        f"PROGRAM chaosprog\nPARAM n = {N}\nPROCESSORS p(3)\n"
        f"{decls}\nREAL s\n{body}\nEND PROGRAM"
    )


@settings(max_examples=12, deadline=None)
@given(
    source=chaos_program(),
    kind=st.sampled_from(KINDS),
    seed=st.integers(0, 2**16),
)
def test_chaos_never_silently_wrong(source, kind, seed):
    """Random program x random single-fault plan: the run must heal to
    the inline oracle bitwise (possibly via recorded degradation) —
    structured failure is acceptable, a wrong answer is not."""
    result = compile_program(source)
    oracle, _ = execute_spmd(result, transport="inline")
    plan = FaultPlan.single(kind, seed=seed, rate=0.25)
    try:
        arrays, stats = execute_spmd(
            result, transport="threaded", chaos=plan, watchdog_s=15.0
        )
    except (DeadlockError, RankCrashError) as exc:
        # Structured failure: carries machine-readable context.
        assert exc.to_dict()
        return
    assert _identical(arrays, oracle)
    if stats.degradations:
        assert all(
            d["code"].startswith("W07") for d in stats.degradations
        )
