"""Scalarizer tests: loop generation, conformance checking, and — most
importantly — semantic equivalence with the F90 reference interpreter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScalarizationError
from repro.frontend import ast_nodes as ast
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize
from repro.runtime.interp import interpret


def scalarized(source: str):
    program = parse(source)
    info = elaborate(program)
    out = scalarize(program, info)
    return out, elaborate(out)


class TestLoopGeneration:
    def test_full_section_becomes_loop(self):
        prog, _ = scalarized("PROGRAM t\nREAL a(8)\na(:) = 1\nEND")
        loop = prog.body[0]
        assert isinstance(loop, ast.Do)
        assert loop.lo.value == 0 and loop.hi.value == 7

    def test_two_dims_two_loops(self):
        prog, _ = scalarized("PROGRAM t\nREAL a(4, 6)\na(:, :) = 1\nEND")
        outer = prog.body[0]
        inner = outer.body[0]
        assert isinstance(inner, ast.Do)
        assert outer.hi.value == 3 and inner.hi.value == 5

    def test_strided_section_zero_based_loop(self):
        prog, info = scalarized("PROGRAM t\nPARAM n = 9\nREAL a(n)\na(1:n:2) = 1\nEND")
        loop = prog.body[0]
        assert loop.hi.value == 4  # 5 elements: 1,3,5,7,9
        assign = loop.body[0]
        form = info.affine(assign.lhs.subscripts[0].expr)
        assert form.coeff(loop.var) == 2 and form.const == 1

    def test_rhs_sections_aligned_to_lhs_loops(self):
        prog, info = scalarized(
            "PROGRAM t\nPARAM n = 8\nREAL a(n)\nREAL b(n)\n"
            "a(2:n) = b(1:n-1)\nEND"
        )
        assign = prog.body[0].body[0]
        lhs_form = info.affine(assign.lhs.subscripts[0].expr)
        rhs_ref = next(ast.array_refs(assign.rhs))
        rhs_form = info.affine(rhs_ref.subscripts[0].expr)
        assert (lhs_form - rhs_form).const == 1  # shift preserved

    def test_index_dims_untouched(self):
        prog, _ = scalarized("PROGRAM t\nREAL a(4, 8)\na(2, :) = 1\nEND")
        assign = prog.body[0].body[0]
        first = assign.lhs.subscripts[0]
        assert isinstance(first, ast.Index) and first.expr.value == 2

    def test_element_statement_untouched(self):
        prog, _ = scalarized("PROGRAM t\nREAL a(4)\na(2) = 1\nEND")
        assert isinstance(prog.body[0], ast.Assign)

    def test_reduction_argument_kept_sectioned(self):
        prog, _ = scalarized(
            "PROGRAM t\nREAL a(8)\nREAL s\ns = SUM(a(1:8))\nEND"
        )
        assign = prog.body[0]
        red = assign.rhs
        assert isinstance(red, ast.Reduction)
        assert isinstance(red.arg.subscripts[0], ast.Triplet)

    def test_statements_renumbered(self):
        prog, _ = scalarized("PROGRAM t\nREAL a(8)\na(:) = 1\na(:) = 2\nEND")
        sids = [s.sid for s in prog.statements()]
        assert sids == list(range(1, len(sids) + 1))

    def test_loops_inside_control_flow(self):
        prog, _ = scalarized(
            "PROGRAM t\nREAL a(8)\nREAL s\nIF s > 0 THEN\na(:) = 1\nEND IF\nEND"
        )
        branch = prog.body[0]
        assert isinstance(branch.then_body[0], ast.Do)


class TestConformance:
    def test_extent_mismatch_raises(self):
        with pytest.raises(ScalarizationError):
            scalarized(
                "PROGRAM t\nREAL a(8)\nREAL b(8)\na(1:4) = b(1:6)\nEND"
            )

    def test_section_count_mismatch_raises(self):
        with pytest.raises(ScalarizationError):
            scalarized(
                "PROGRAM t\nREAL a(8)\nREAL b(8, 8)\na(1:4) = b(1:4, 1:4)\nEND"
            )

    def test_section_on_scalar_assignment_raises(self):
        with pytest.raises(ScalarizationError):
            scalarized("PROGRAM t\nREAL a(8)\nREAL s\ns = a(1:4)\nEND")

    def test_symbolic_bounds_resolved_via_params(self):
        prog, _ = scalarized(
            "PROGRAM t\nPARAM n = 12\nREAL a(n)\na(2:n-1) = 0\nEND"
        )
        assert prog.body[0].hi.value == 9  # 10 elements


class TestOverlapTemporaries:
    def test_temp_introduced_for_shifted_self_read(self):
        prog, info = scalarized("PROGRAM t\nPARAM n = 10\nREAL u(n)\nu(3:8) = u(1:6)\nEND")
        assert "_tmp1" in info.layouts
        # the temp aligns with u: identical mapping
        assert info.layout("_tmp1").dims == info.layout("u").dims

    def test_no_temp_for_identical_sections(self):
        prog, info = scalarized(
            "PROGRAM t\nPARAM n = 10\nREAL u(n)\nu(3:8) = u(3:8) + 1\nEND"
        )
        assert "_tmp1" not in info.layouts

    def test_no_temp_for_different_arrays(self):
        prog, info = scalarized(
            "PROGRAM t\nPARAM n = 10\nREAL u(n)\nREAL v(n)\nu(3:8) = v(1:6)\nEND"
        )
        assert "_tmp1" not in info.layouts

    def test_temp_copy_back_adds_no_communication(self):
        from repro.core.pipeline import compile_program

        result = compile_program(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL u(n)
              DISTRIBUTE u(BLOCK) ONTO p
              u(2:n) = u(1:n-1)
            END
            """
        )
        # exactly one shift: the halo fetch for the temp fill; the copy
        # back is perfectly aligned.
        assert result.call_sites_by_kind() == {"shift": 1}


class TestSemanticEquivalence:
    """Scalarized programs must compute exactly what the F90 semantics
    say (paper: the scalarizer must be meaning-preserving even though it
    perturbs placement analysis)."""

    CASES = [
        "PROGRAM t\nPARAM n = 8\nREAL a(n)\nREAL b(n)\n"
        "a(:) = 3\nb(2:n) = a(1:n-1) * 2\nEND",
        "PROGRAM t\nPARAM n = 6\nREAL a(n, n)\nREAL b(n, n)\n"
        "b(2:n-1, 2:n-1) = a(1:n-2, 2:n-1) + a(3:n, 2:n-1)\nEND",
        "PROGRAM t\nPARAM n = 9\nREAL a(n)\n"
        "a(1:n:2) = 1\na(2:n:2) = 2\nEND",
        "PROGRAM t\nPARAM n = 6\nREAL a(n, n)\nREAL s\n"
        "s = SUM(a(2, 1:n))\na(:, :) = s\nEND",
        "PROGRAM t\nPARAM n = 8\nREAL a(n)\nREAL b(n)\n"
        "DO k = 1, 3\nb(2:n-1) = a(1:n-2) + a(3:n)\na(2:n-1) = 0.5 * b(2:n-1)\n"
        "END DO\nEND",
        "PROGRAM t\nPARAM n = 8\nREAL a(n)\nREAL s\n"
        "s = 1\nIF s > 0 THEN\na(1:n:2) = 7\nELSE\na(:) = 0\nEND IF\nEND",
        # Overlapping same-array assignments: F90 fetch-before-store.
        "PROGRAM t\nPARAM n = 10\nREAL u(n)\nu(3:8) = u(1:6)\nEND",
        "PROGRAM t\nPARAM n = 10\nREAL u(n)\nu(1:6) = u(3:8)\nEND",
        "PROGRAM t\nPARAM n = 10\nREAL u(n)\n"
        "u(3:8) = u(1:6) + u(5:10)\nEND",
        "PROGRAM t\nPARAM n = 8\nREAL a(n, n)\n"
        "a(2:7, 2:7) = a(1:6, 2:7) + a(3:8, 2:7)\nEND",
        "PROGRAM t\nPARAM n = 10\nREAL u(n)\n"
        "DO k = 1, 3\nu(3:8) = 0.5 * u(2:7) + 0.5 * u(4:9)\nEND DO\nEND",
    ]

    @pytest.mark.parametrize("source", CASES)
    def test_scalarized_equals_vector_semantics(self, source):
        program = parse(source)
        info = elaborate(program)
        ref = interpret(info)

        sprog = scalarize(program, info)
        sinfo = elaborate(sprog)
        got = interpret(sinfo)

        # Compiler temporaries may add state; all original names must agree.
        assert set(ref) <= set(got)
        for name in ref:
            np.testing.assert_allclose(
                got[name], ref[name], rtol=0, atol=0,
                err_msg=f"mismatch in {name}",
            )
