"""Property-based frontend tests: randomized F90 programs through the
scalarizer must preserve semantics, and SSA reaching definitions must
match a brute-force execution oracle."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast_nodes as ast
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize
from repro.ir.cfg import CFG
from repro.ir.dominators import DominatorInfo
from repro.ir.ssa import SSA, PhiDef, RegularDef
from repro.runtime.interp import interpret

N = 12


@st.composite
def f90_statement(draw):
    """One random F90 array statement over arrays u/v/w of extent N.

    Sections are chosen in-bounds with random strides; the RHS may read
    the target array itself (exercising the overlap-temporary path).
    """
    arrays = ["u", "v", "w"]
    dst = draw(st.sampled_from(arrays))
    step = draw(st.sampled_from([1, 1, 2, 3]))
    lo = draw(st.integers(1, 3))
    count = draw(st.integers(1, (N - 4) // step))
    hi = lo + step * (count - 1)

    terms = []
    for _ in range(draw(st.integers(1, 2))):
        src = draw(st.sampled_from(arrays))
        src_step = draw(st.sampled_from([step, 1]))
        max_lo = N - src_step * (count - 1)
        src_lo = draw(st.integers(1, max(1, max_lo)))
        src_hi = src_lo + src_step * (count - 1)
        factor = draw(st.sampled_from(["", "0.5 * ", "2 * "]))
        terms.append(f"{factor}{src}({src_lo}:{src_hi}:{src_step})")
    rhs = " + ".join(terms)
    if draw(st.booleans()):
        rhs += f" + {draw(st.integers(-3, 3))}"
    return f"{dst}({lo}:{hi}:{step}) = {rhs}"


@st.composite
def f90_program(draw):
    stmts = draw(st.lists(f90_statement(), min_size=1, max_size=6))
    body = "\n".join(stmts)
    if draw(st.booleans()):
        body = f"DO rep = 1, 2\n{body}\nEND DO"
    return (
        f"PROGRAM rand\nPARAM n = {N}\n"
        f"REAL u(n)\nREAL v(n)\nREAL w(n)\n{body}\nEND"
    )


class TestScalarizerEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(source=f90_program())
    def test_scalarized_matches_f90_semantics(self, source):
        program = parse(source)
        info = elaborate(program)
        ref = interpret(info)

        sprog = scalarize(program, info)
        got = interpret(elaborate(sprog))
        for name in ref:
            np.testing.assert_array_equal(got[name], ref[name])


def _execution_oracle_reaching(info, program):
    """Execute the program abstractly, recording for every dynamic use of
    a variable which SSA def *must* reach it: the most recent write (by
    statement instance) of any element, or None if never written."""
    last_writer: dict[str, ast.Assign | None] = {}
    observations: list[tuple[ast.Assign, str, ast.Assign | None]] = []

    def walk(body, env):
        for stmt in body:
            if isinstance(stmt, ast.Do):
                lo = info.affine(stmt.lo).evaluate(env)
                hi = info.affine(stmt.hi).evaluate(env)
                step = info.affine(stmt.step).evaluate(env)
                for value in range(lo, hi + 1, step):
                    walk(stmt.body, {**env, stmt.var: value})
            elif isinstance(stmt, ast.Assign):
                for node in ast.walk_expr(stmt.rhs):
                    if isinstance(node, ast.ArrayRef):
                        observations.append(
                            (stmt, node.name, last_writer.get(node.name))
                        )
                if isinstance(stmt.lhs, ast.ArrayRef):
                    last_writer[stmt.lhs.name] = stmt

    walk(program.body, dict(info.params))
    return observations


class TestSSAReachingOracle:
    """The SSA reaching def for a use must be able to 'see' (through φ
    parameters and preserving links) the statement that actually wrote
    last before each dynamic instance of the use."""

    PROGRAMS = [
        """PROGRAM p1
REAL a(8)
REAL b(8)
a(1) = 0
DO i = 1, 3
b(i) = a(i)
a(i) = b(i)
END DO
b(4) = a(4)
END""",
        """PROGRAM p2
REAL a(8)
REAL s
s = 1
IF s > 0 THEN
a(1) = 1
ELSE
a(2) = 2
END IF
s = a(3)
END""",
        """PROGRAM p3
REAL a(8)
REAL b(8)
DO i = 1, 2
DO j = 1, 2
a(j) = b(j)
END DO
b(1) = a(1)
END DO
END""",
    ]

    @staticmethod
    def _reachable_writers(start):
        """All regular defs visible from an SSA def through φ params and
        preserving links."""
        seen, out, stack = set(), set(), [start]
        while stack:
            d = stack.pop()
            if d.id in seen:
                continue
            seen.add(d.id)
            if isinstance(d, PhiDef):
                stack.extend(p for p in d.params if p is not None)
            elif isinstance(d, RegularDef):
                out.add(d.stmt.sid)
                if d.preserving and d.prev is not None:
                    stack.append(d.prev)
            else:
                out.add(0)  # ENTRY
        return out

    def test_oracle(self):
        for source in self.PROGRAMS:
            program = parse(source)
            info = elaborate(program)
            cfg = CFG(program)
            dom = DominatorInfo(cfg)
            tracked = set(info.layouts) | set(info.scalars)
            ssa = SSA(cfg, dom, tracked)

            observations = _execution_oracle_reaching(info, program)
            by_use = {}
            for use in ssa.uses:
                by_use.setdefault((use.stmt.sid, use.var), use)
            for stmt, var, writer in observations:
                use = by_use.get((stmt.sid, var))
                if use is None:
                    continue
                visible = self._reachable_writers(use.reaching)
                expected = writer.sid if writer is not None else 0
                assert expected in visible, (
                    f"{source.splitlines()[0]}: use of {var} at s{stmt.sid} "
                    f"cannot see its actual writer s{expected}"
                )
