"""Greedy choice and combining (§4.7) tests."""

from __future__ import annotations

from repro.comm.compatibility import message_volume
from repro.core.context import CompilerOptions
from repro.core.pipeline import Strategy, compile_program
from conftest import analyzed


SRC_TWO_ARRAYS = """
PROGRAM t
  PARAM n = 16
  PROCESSORS p(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  REAL d(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DISTRIBUTE d(BLOCK) ONTO p
  c(2:n) = a(1:n-1)
  d(2:n) = b(1:n-1)
END
"""


def run_global(source: str, params=None, options=None):
    return compile_program(source, params, Strategy.GLOBAL, options)


class TestCombining:
    def test_same_shift_different_arrays_combine(self):
        result = run_global(SRC_TWO_ARRAYS)
        assert result.call_sites() == 1
        (group,) = result.placed
        assert {e.array for e in group.entries} == {"a", "b"}

    def test_opposite_shifts_do_not_combine(self):
        result = run_global(
            SRC_TWO_ARRAYS.replace("d(2:n) = b(1:n-1)", "d(1:n-1) = b(2:n)")
        )
        assert result.call_sites() == 2

    def test_group_lands_at_latest_common_position(self):
        result = run_global(SRC_TWO_ARRAYS)
        (group,) = result.placed
        ctx = result.ctx
        for e in group.entries:
            assert group.position in e.candidate_set()
            # the group position must not be dominated by any later common
            # candidate
            common = set.intersection(*(set(e2.candidates) for e2 in group.entries))
            for p in common:
                assert ctx.position_dominates(p, group.position)

    def test_threshold_blocks_combining(self):
        tiny = CompilerOptions(combine_threshold_bytes=8)
        result = run_global(SRC_TWO_ARRAYS, options=tiny)
        assert result.call_sites() == 2

    def test_volume_accumulates_across_group(self):
        # threshold fits two entries but not three
        src = SRC_TWO_ARRAYS.replace(
            "  c(2:n) = a(1:n-1)",
            "  REAL e(n)\n  DISTRIBUTE e(BLOCK) ONTO p\n"
            "  REAL f(n)\n  DISTRIBUTE f(BLOCK) ONTO p\n"
            "  c(2:n) = a(1:n-1)\n  f(2:n) = e(1:n-1)",
        )
        # each message is 8 bytes (one halo element per processor)
        options = CompilerOptions(combine_threshold_bytes=17)
        result = run_global(src, options=options)
        sizes = sorted(len(pc.entries) for pc in result.placed)
        assert sizes == [1, 2]

    def test_reductions_in_one_statement_combine(self):
        result = run_global(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              s = SUM(a(1:n)) + SUM(b(1:n))
            END
            """
        )
        assert result.call_sites_by_kind() == {"reduction": 1}

    def test_reductions_across_statements_stay_separate(self):
        result = run_global(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL b(n)
              REAL s
              REAL q
              DISTRIBUTE a(BLOCK) ONTO p
              DISTRIBUTE b(BLOCK) ONTO p
              s = SUM(a(1:n))
              b(2:n) = s
              q = SUM(b(1:n))
            END
            """
        )
        assert result.call_sites_by_kind()["reduction"] == 2


class TestGreedyOrderOptions:
    def test_all_orders_produce_valid_schedules(self, fig4_source):
        for order in ("constrained", "arbitrary", "reversed"):
            options = CompilerOptions(greedy_order=order)
            result = compile_program(fig4_source, None, Strategy.GLOBAL, options)
            assert result.call_sites() >= 1
            for pc in result.placed:
                for e in pc.entries:
                    assert pc.position in e.candidate_set()

    def test_constrained_order_is_default_and_best_on_fig4(self, fig4_source):
        counts = {}
        for order in ("constrained", "arbitrary", "reversed"):
            options = CompilerOptions(greedy_order=order)
            result = compile_program(fig4_source, None, Strategy.GLOBAL, options)
            counts[order] = result.call_sites()
        assert counts["constrained"] <= min(counts.values())


class TestVolumeEstimation:
    def test_shift_volume_is_halo_only(self):
        ctx, entries = analyzed(SRC_TWO_ARRAYS)
        e = entries[0]
        node = ctx.node_of(e.latest_pos)
        section = ctx.sections.section_at(e.use, node)
        ranges = ctx.sections.live_ranges_at(node)
        vol = message_volume(ctx.info, e, section, ranges)
        # 1 halo element of 8 bytes per processor
        assert vol == 8

    def test_reduction_volume_is_result_slab(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL s
              DISTRIBUTE a(BLOCK) ONTO p
              s = SUM(a(1:n))
            END
            """
        )
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        section = ctx.sections.section_at(e.use, node)
        vol = message_volume(
            ctx.info, e, section, ctx.sections.live_ranges_at(node)
        )
        assert vol == 8  # a single scalar result

    def test_allgather_volume_is_whole_section(self):
        ctx, entries = analyzed(
            """
            PROGRAM t
              PARAM n = 16
              PROCESSORS p(4)
              REAL a(n)
              REAL r(n)
              DISTRIBUTE a(BLOCK) ONTO p
              r(1:n) = a(1:n)
            END
            """
        )
        (e,) = entries
        node = ctx.node_of(e.latest_pos)
        section = ctx.sections.section_at(e.use, node)
        vol = message_volume(
            ctx.info, e, section, ctx.sections.live_ranges_at(node)
        )
        assert vol == 16 * 8
