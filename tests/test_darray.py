"""Distributed-array bookkeeping tests (ownership, halos, rank storage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distribution.layout import DimMapping, DistFormat, Layout, ProcessorGrid
from repro.errors import SimulationError
from repro.runtime.darray import (
    Ownership,
    RankStorage,
    grid_ranks,
    shifted_coords,
)
from repro.sections.rsd import RSD, DimSection


def layout_2d(n=16, pr=4, pc=2) -> Layout:
    return Layout(
        "a",
        ProcessorGrid("p", (pr, pc)),
        (
            DimMapping(DistFormat.BLOCK, n, grid_axis=0),
            DimMapping(DistFormat.BLOCK, n, grid_axis=1),
        ),
    )


class TestGridRanks:
    def test_enumeration_row_major(self):
        ranks = grid_ranks((2, 3))
        assert len(ranks) == 6
        assert ranks[0].coords == (0, 0)
        assert ranks[1].coords == (0, 1)
        assert ranks[3].coords == (1, 0)

    def test_shifted_coords(self):
        assert shifted_coords((1, 1), (1, 0), (4, 2)) == (2, 1)
        assert shifted_coords((3, 1), (1, 0), (4, 2)) is None  # off the edge
        assert shifted_coords((0, 0), (-1, 0), (4, 2)) is None
        assert shifted_coords((2, 0), (0, 0), (4, 2)) == (2, 0)


class TestOwnership:
    def test_block_regions_partition(self):
        own = Ownership(layout_2d())
        seen = np.zeros((16, 16), dtype=int)
        for gr in grid_ranks((4, 2)):
            rsd = own.owned_rsd(gr.coords)
            seen[
                rsd.dims[0].lo - 1 : rsd.dims[0].hi,
                rsd.dims[1].lo - 1 : rsd.dims[1].hi,
            ] += 1
        assert (seen == 1).all()

    def test_cyclic_regions_partition(self):
        layout = Layout(
            "c",
            ProcessorGrid("p", (3,)),
            (DimMapping(DistFormat.CYCLIC, 10, grid_axis=0),),
        )
        own = Ownership(layout)
        elements = []
        for gr in grid_ranks((3,)):
            elements.extend(own.owned_rsd(gr.coords).dims[0].elements())
        assert sorted(elements) == list(range(1, 11))

    def test_collapsed_dim_owned_everywhere(self):
        layout = Layout(
            "g",
            ProcessorGrid("p", (2,)),
            (
                DimMapping(DistFormat.COLLAPSED, 8),
                DimMapping(DistFormat.BLOCK, 8, grid_axis=0),
            ),
        )
        own = Ownership(layout)
        rsd = own.owned_rsd((1,))
        assert rsd.dims[0] == DimSection(1, 8)
        assert rsd.dims[1] == DimSection(5, 8)

    def test_owner_rank_coords(self):
        own = Ownership(layout_2d())
        assert own.owner_rank_coords((1, 1)) == (0, 0)
        assert own.owner_rank_coords((16, 16)) == (3, 1)
        assert own.owner_rank_coords((5, 9)) == (1, 1)

    def test_halo_band_extends_read_side(self):
        own = Ownership(layout_2d())
        band = own.halo_band((1, 0), {0: 1})  # +1 shift in dim 0
        owned = own.owned_rsd((1, 0))
        assert band.dims[0].lo == owned.dims[0].lo
        assert band.dims[0].hi == owned.dims[0].hi + 1
        assert band.dims[1] == owned.dims[1]

    def test_halo_band_negative_shift(self):
        own = Ownership(layout_2d())
        band = own.halo_band((1, 0), {0: -2})
        owned = own.owned_rsd((1, 0))
        assert band.dims[0].lo == owned.dims[0].lo - 2

    def test_halo_band_clips_at_array_bounds(self):
        own = Ownership(layout_2d())
        band = own.halo_band((3, 0), {0: 1})  # last block: nothing above
        assert band.dims[0].hi == 16


class TestRankStorage:
    def test_install_and_read(self):
        store = RankStorage("a", (4, 4))
        store.install(RSD.of((1, 2), (1, 4)), np.ones((2, 4)))
        assert store.read((1, 3)) == 1.0

    def test_read_invalid_raises(self):
        store = RankStorage("a", (4, 4))
        with pytest.raises(SimulationError, match="not present"):
            store.read((3, 3))

    def test_write_validates(self):
        store = RankStorage("a", (4, 4))
        store.write((2, 2), 5.0)
        assert store.read((2, 2)) == 5.0

    def test_extract_strided(self):
        store = RankStorage("a", (8,))
        store.install(RSD.of((1, 8)), np.arange(8.0))
        got = store.extract(RSD.of((1, 7, 2)))
        np.testing.assert_array_equal(got, [0, 2, 4, 6])

    def test_extract_partial_invalid_raises(self):
        store = RankStorage("a", (8,))
        store.install(RSD.of((1, 4)), np.ones(4))
        with pytest.raises(SimulationError):
            store.extract(RSD.of((3, 6)))

    def test_invalidate_all_except(self):
        store = RankStorage("a", (8,))
        store.install(RSD.of((1, 8)), np.ones(8))
        store.invalidate_all_except(RSD.of((1, 4)))
        assert store.read((2,)) == 1.0
        with pytest.raises(SimulationError):
            store.read((6,))
