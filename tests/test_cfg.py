"""Augmented CFG structure tests (paper §4.1 / Figure 7)."""

from __future__ import annotations

from repro.frontend.parser import parse
from repro.ir.cfg import CFG, NodeKind, Position



def build(source: str) -> CFG:
    return CFG(parse(source))


SRC_LOOP = """PROGRAM t
REAL a(8)
DO i = 1, 8
a(i) = 1
END DO
END"""

SRC_IF = """PROGRAM t
REAL s
IF s > 0 THEN
s = 1
ELSE
s = 2
END IF
END"""


class TestStructure:
    def test_entry_exit_exist(self):
        cfg = build("PROGRAM t\nREAL s\ns = 1\nEND")
        assert cfg.entry.kind is NodeKind.ENTRY
        assert cfg.exit.kind is NodeKind.EXIT
        assert cfg.exit.succs == []

    def test_edges_mirrored(self):
        cfg = build(SRC_LOOP)
        for node in cfg.nodes:
            for s in node.succs:
                assert node in s.preds
            for p in node.preds:
                assert node in p.succs

    def test_loop_anchor_nodes(self):
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.preheader.kind is NodeKind.PREHEADER
        assert loop.header.kind is NodeKind.HEADER
        assert loop.latch.kind is NodeKind.LATCH
        assert loop.postexit.kind is NodeKind.POSTEXIT

    def test_zero_trip_edge(self):
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.postexit in loop.preheader.succs

    def test_postexit_pred_order_zero_trip_first(self):
        # SSA φ-exit parameter order depends on this.
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.postexit.preds[0] is loop.preheader
        assert loop.postexit.preds[1] is loop.header

    def test_header_pred_order_preheader_first(self):
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.header.preds[0] is loop.preheader
        assert loop.header.preds[1] is loop.latch

    def test_back_edge(self):
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.header in loop.latch.succs

    def test_preheader_outside_loop(self):
        cfg = build(SRC_LOOP)
        (loop,) = cfg.loops
        assert loop.preheader.nl == 0
        assert loop.header.nl == 1
        assert loop.postexit.nl == 0

    def test_branch_and_join(self):
        cfg = build(SRC_IF)
        kinds = {n.kind for n in cfg.nodes}
        assert NodeKind.BRANCH in kinds and NodeKind.JOIN in kinds
        branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
        assert len(branch.succs) == 2
        assert branch.origin_sid == 1

    def test_if_without_else_edge(self):
        cfg = build("PROGRAM t\nREAL s\nIF s > 0 THEN\ns = 1\nEND IF\nEND")
        branch = next(n for n in cfg.nodes if n.kind is NodeKind.BRANCH)
        join = next(n for n in cfg.nodes if n.kind is NodeKind.JOIN)
        assert join in branch.succs  # fall-through edge


class TestNesting:
    SRC = """PROGRAM t
REAL a(8, 8)
DO i = 1, 8
DO j = 1, 8
a(i, j) = 1
END DO
END DO
END"""

    def test_depths(self):
        cfg = build(self.SRC)
        outer, inner = cfg.loops
        assert outer.depth == 1 and inner.depth == 2
        assert inner.parent is outer
        assert outer.children == [inner]

    def test_contains(self):
        cfg = build(self.SRC)
        outer, inner = cfg.loops
        assert outer.contains_loop(inner)
        assert not inner.contains_loop(outer)
        assert outer.contains_node(inner.header)

    def test_cnl(self):
        cfg = build(self.SRC)
        stmt = next(iter(cfg.assigns()))
        node = cfg.node_of_stmt(stmt)
        assert cfg.cnl(node, node) == 2
        assert cfg.cnl(node, cfg.entry) == 0

    def test_loops_containing_order(self):
        cfg = build(self.SRC)
        stmt = next(iter(cfg.assigns()))
        chain = cfg.node_of_stmt(stmt).loops_containing()
        assert [l.depth for l in chain] == [1, 2]


class TestPositions:
    def test_before_after(self):
        cfg = build("PROGRAM t\nREAL s\ns = 1\ns = 2\nEND")
        stmts = list(cfg.assigns())
        p0 = cfg.position_before(stmts[0])
        p1 = cfg.position_after(stmts[0])
        p2 = cfg.position_before(stmts[1])
        assert p0.index == -1
        assert p1 == p2  # after s1 == before s2 in the same block

    def test_position_ordering(self):
        assert Position(3, -1) < Position(3, 0) < Position(4, -1)

    def test_reverse_postorder_starts_at_entry(self):
        cfg = build(SRC_LOOP)
        order = cfg.reverse_postorder()
        assert order[0] is cfg.entry
        assert len(order) == len(cfg.nodes)

    def test_dump_mentions_statements(self):
        cfg = build(SRC_LOOP)
        assert "a(i) = 1" in cfg.dump()
