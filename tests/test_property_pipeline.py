"""Property-based end-to-end tests: random data-parallel programs through
the whole pipeline, with the schedule-safety checker as the oracle.

Each generated program is a random sequence of interior stencil updates
(random arrays, shifts, strides, optional time loop and conditionals).
For every strategy the compiled schedule must (a) satisfy the structural
invariants of the paper's claims and (b) deliver value-fresh data at every
dynamic read — verified by concrete execution.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import (
    Strategy,
    compile_all_strategies,
    compile_program,
)
from repro.runtime.checker import check_schedule

N = 12  # array extent; interior updates stay within |shift| <= 2

ARRAYS = ["u", "v", "w", "x"]


@st.composite
def stencil_statement(draw):
    dst = draw(st.sampled_from(ARRAYS))
    nsrcs = draw(st.integers(1, 2))
    terms = []
    for _ in range(nsrcs):
        # self-references included: exercises the overlap-temporary path
        src = draw(st.sampled_from(ARRAYS + [dst]))
        shift = draw(st.integers(-2, 2))
        lo, hi = 3 + shift, N - 2 + shift
        terms.append(f"{src}({lo}:{hi})")
    rhs = " + ".join(terms)
    return f"{dst}(3:{N - 2}) = {rhs}"


@st.composite
def reduction_statement(draw):
    src = draw(st.sampled_from(ARRAYS))
    lo = draw(st.integers(1, 3))
    hi = draw(st.integers(8, N))
    return f"s = SUM({src}({lo}:{hi}))"


@st.composite
def program_source(draw):
    stmts = draw(st.lists(stencil_statement(), min_size=1, max_size=5))
    if draw(st.booleans()):
        where = draw(st.integers(0, len(stmts)))
        stmts.insert(where, draw(reduction_statement()))
        # make the reduced value observable downstream
        stmts.append(f"{draw(st.sampled_from(ARRAYS))}(3:{N - 2}) = s")
    use_time_loop = draw(st.booleans())
    guard_index = (
        draw(st.integers(0, len(stmts) - 1)) if draw(st.booleans()) else None
    )

    body_lines = []
    for i, stmt in enumerate(stmts):
        if i == guard_index:
            body_lines.append(f"IF s > 0 THEN\n{stmt}\nEND IF")
        else:
            body_lines.append(stmt)
    body = "\n".join(body_lines)
    if use_time_loop:
        body = f"DO tstep = 1, 3\n{body}\nEND DO"

    decls = "\n".join(
        f"REAL {name}({N})\nDISTRIBUTE {name}(BLOCK) ONTO p" for name in ARRAYS
    )
    return f"""PROGRAM randprog
PARAM n = {N}
PROCESSORS p(3)
{decls}
REAL s
{body}
END PROGRAM"""


@st.composite
def program_source_2d(draw):
    """Two-dimensional variant: (BLOCK, BLOCK) arrays with independent
    shifts per dimension."""
    arrays = ["u", "v"]
    lines = []
    for _ in range(draw(st.integers(1, 4))):
        dst = draw(st.sampled_from(arrays))
        sx = draw(st.integers(-1, 1))
        sy = draw(st.integers(-1, 1))
        src = draw(st.sampled_from(arrays))
        lines.append(
            f"{dst}(3:{N - 2}, 3:{N - 2}) = "
            f"{src}({3 + sx}:{N - 2 + sx}, {3 + sy}:{N - 2 + sy})"
        )
    body = "\n".join(lines)
    if draw(st.booleans()):
        body = f"DO tstep = 1, 2\n{body}\nEND DO"
    decls = "\n".join(
        f"REAL {a}({N}, {N})\nDISTRIBUTE {a}(BLOCK, BLOCK) ONTO p"
        for a in arrays
    )
    return (
        f"PROGRAM rand2d\nPARAM n = {N}\nPROCESSORS p(2, 2)\n"
        f"{decls}\n{body}\nEND PROGRAM"
    )


@settings(max_examples=40, deadline=None)
@given(source=program_source())
def test_random_programs_compile_and_validate(source):
    results = compile_all_strategies(source)
    sites = {s: r.call_sites() for s, r in results.items()}

    # Structural invariants.
    for strategy, result in results.items():
        for entry in result.entries:
            assert result.ctx.position_dominates(
                entry.earliest_pos, entry.latest_pos
            )
            use_pos = result.ctx.cfg.position_before(entry.use.stmt)
            for cand in entry.candidates:
                assert result.ctx.position_dominates(cand, use_pos)
        for pc in result.placed:
            for e in pc.entries:
                assert pc.position in e.candidate_set()

    # The global algorithm never emits more call sites than the baselines.
    assert sites[Strategy.GLOBAL] <= sites[Strategy.ORIG]
    assert sites[Strategy.GLOBAL] <= sites[Strategy.EARLIEST]
    assert sites[Strategy.EARLIEST] <= sites[Strategy.ORIG]

    # Concrete execution: every strategy's schedule delivers fresh data.
    for strategy, result in results.items():
        check_schedule(result)

    # Group invariants (§4.7): members of every emitted group must be
    # pairwise combinable at the group's position and within the volume
    # threshold.
    from repro.comm.compatibility import message_volume
    from repro.core.greedy import _combinable_at

    result = results[Strategy.GLOBAL]
    ctx = result.ctx
    for pc in result.placed:
        node = ctx.node_of(pc.position)
        ranges = ctx.sections.live_ranges_at(node)
        total = 0
        for i, a in enumerate(pc.entries):
            total += message_volume(
                ctx.info, a, ctx.sections.section_at(a.use, node), ranges
            )
            for b in pc.entries[i + 1:]:
                assert _combinable_at(ctx, a, b, pc.position)
        if len(pc.entries) > 1:
            assert total <= ctx.cost_model.threshold_bytes()


@settings(max_examples=15, deadline=None)
@given(source=program_source(), seed=st.integers(0, 2**16))
def test_checker_stable_across_seeds(source, seed):
    results = compile_all_strategies(source)
    for result in results.values():
        check_schedule(result, seed=seed)


@settings(max_examples=25, deadline=None)
@given(
    source=program_source(),
    threshold=st.one_of(st.none(), st.integers(1, 1 << 20)),
)
def test_any_threshold_stays_oracle_accepted(source, threshold):
    """Correctness never depends on the combining threshold: whatever
    byte limit the cost model (or an override) picks — including
    degenerate 1-byte thresholds that forbid all combining — the emitted
    schedule must still deliver fresh data at every read."""
    from repro.core.context import CompilerOptions

    result = compile_program(
        source,
        options=CompilerOptions(combine_threshold_bytes=threshold),
    )
    assert result.ctx.cost_model.threshold_bytes() == (
        threshold
        if threshold is not None
        else result.ctx.cost_model.derived_threshold()
    )
    check_schedule(result)


@settings(max_examples=20, deadline=None)
@given(source=program_source())
def test_lower_bound_floors_every_strategy(source):
    """The HBL floor is a program property: identical across strategies,
    and never above what any strategy's schedule actually moves — so the
    bytes/LB ratio is monotone non-increasing as orig -> nored -> comb
    refine the schedule."""
    from repro.cost.lower_bound import lower_bound
    from repro.runtime.spmd import execute_spmd

    results = compile_all_strategies(source)
    floors = {
        s: lower_bound(r.info).wire_floor_bytes for s, r in results.items()
    }
    assert len(set(floors.values())) == 1
    floor = floors[Strategy.GLOBAL]
    moved = {}
    for strategy, result in results.items():
        _, stats = execute_spmd(result)
        moved[strategy] = stats.bytes_moved
        assert floor <= stats.bytes_moved
    # Strategy refinement can only shrink traffic toward the fixed floor.
    assert moved[Strategy.GLOBAL] <= moved[Strategy.ORIG]


@settings(max_examples=25, deadline=None)
@given(source=program_source_2d())
def test_random_2d_programs_validate(source):
    import numpy as np

    from repro.runtime.interp import interpret
    from repro.runtime.spmd import execute_spmd

    results = compile_all_strategies(source)
    sites = {s: r.call_sites() for s, r in results.items()}
    assert sites[Strategy.GLOBAL] <= sites[Strategy.ORIG]
    for result in results.values():
        check_schedule(result)
    # Full SPMD execution (including diagonal corner forwarding) for the
    # global version.
    result = results[Strategy.GLOBAL]
    state, _ = execute_spmd(result)
    ref = interpret(result.info)
    for name in ref:
        np.testing.assert_array_equal(state[name], ref[name])
