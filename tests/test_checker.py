"""Schedule-safety checker tests: valid schedules pass, corrupted
schedules are caught."""

from __future__ import annotations

import pytest

from repro.core.pipeline import Strategy, compile_all_strategies, compile_program
from repro.errors import SimulationError
from repro.evaluation.programs import BENCHMARKS
from repro.ir.cfg import Position
from repro.runtime.checker import ScheduleChecker, check_schedule

SMALL = {
    "shallow": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 8, "pr": 2, "pc": 2},
    "trimesh": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 8, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 8, "nsteps": 2, "pr": 2, "pc": 2},
}


class TestValidSchedules:
    @pytest.mark.parametrize("program", sorted(BENCHMARKS))
    @pytest.mark.parametrize("strategy", list(Strategy))
    def test_benchmark_schedules_deliver_fresh_data(self, program, strategy):
        result = compile_program(
            BENCHMARKS[program], params=SMALL[program], strategy=strategy
        )
        stats = check_schedule(result)
        assert stats.reads_checked > 0
        if result.entries:
            assert stats.deliveries > 0

    def test_fig4_all_strategies(self, fig4_source):
        for strategy, result in compile_all_strategies(fig4_source).items():
            stats = check_schedule(result)
            assert stats.reads_checked > 0

    def test_stencil(self, stencil_source):
        for strategy, result in compile_all_strategies(stencil_source).items():
            check_schedule(result)

    def test_deliveries_match_dynamic_op_count(self, stencil_source):
        result = compile_program(stencil_source, strategy="comb")
        stats = check_schedule(result)
        # every placed op fires once per time-loop iteration (4 steps)
        assert stats.deliveries == sum(4 * len(pc.entries) for pc in result.placed)


class TestCorruptedSchedules:
    def test_missing_delivery_detected(self, stencil_source):
        result = compile_program(stencil_source, strategy="comb")
        result.placed.clear()  # drop all communication
        with pytest.raises(SimulationError, match="no delivery"):
            check_schedule(result)

    def test_too_early_placement_detected(self, stencil_source):
        """Hoisting the stencil's exchange out of the time loop serves
        stale first-iteration data: the checker must flag it."""
        result = compile_program(stencil_source, strategy="comb")
        ctx = result.ctx
        time_loop = ctx.cfg.loops[0]
        bad = Position(time_loop.preheader.id, -1)
        for pc in result.placed:
            if any(e.array == "a" for e in pc.entries):
                pc.position = bad
        with pytest.raises(SimulationError, match="stale"):
            check_schedule(result)

    def test_narrowed_section_detected(self, stencil_source):
        """Shrinking a delivered section below what the use reads must be
        caught as a coverage miss."""
        result = compile_program(stencil_source, strategy="comb")
        checker = ScheduleChecker(result)

        original_fire = checker._fire

        def sabotage(anchor):
            original_fire(anchor)
            for eid, delivery in list(checker.delivered.items()):
                # chop the last element off every delivered section
                rsd = delivery.rsd
                from repro.sections.rsd import RSD, DimSection

                d = rsd.dims[0]
                if d.count() > 1:
                    new = DimSection(d.lo, d.hi - d.step, d.step)
                    delivery.rsd = RSD((new,) + rsd.dims[1:])

        checker._fire = sabotage
        with pytest.raises(SimulationError, match="not covered"):
            checker.run()


class TestCheckerAccounting:
    def test_stats_shrink_with_combining(self, fig4_source):
        results = compile_all_strategies(fig4_source)
        orig = check_schedule(results[Strategy.ORIG])
        comb = check_schedule(results[Strategy.GLOBAL])
        # same reads validated, fewer deliveries needed
        assert comb.reads_checked == orig.reads_checked
        assert comb.deliveries <= orig.deliveries

    def test_eliminated_uses_checked_against_subsumer(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        checker = ScheduleChecker(result)
        checker.run()
        for e in result.eliminated_entries():
            winner = checker._covering[e.id]
            assert winner.alive and winner is not e
