"""Regular Section Descriptor algebra: unit tests plus property tests
against brute-force element sets."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sections.rsd import EMPTY_DIM, RSD, DimSection


def dims_st():
    return st.builds(
        DimSection,
        st.integers(-20, 40),
        st.integers(-20, 60),
        st.integers(1, 7),
    )


def elements(d: DimSection) -> set[int]:
    return set(d.elements())


class TestDimSectionBasics:
    def test_empty_canonical(self):
        assert DimSection(5, 3).is_empty
        assert DimSection(5, 3) == DimSection(10, 1)

    def test_hi_normalized_to_last_element(self):
        assert DimSection(1, 10, 4) == DimSection(1, 9, 4)

    def test_singleton_step_normalized(self):
        assert DimSection(3, 3, 5) == DimSection(3, 3, 1)

    def test_count(self):
        assert DimSection(1, 10).count() == 10
        assert DimSection(1, 10, 3).count() == 4
        assert EMPTY_DIM.count() == 0

    def test_contains_point(self):
        d = DimSection(2, 10, 2)
        assert d.contains_point(4)
        assert not d.contains_point(5)
        assert not d.contains_point(12)

    def test_shifted(self):
        assert DimSection(1, 5).shifted(3) == DimSection(4, 8)
        assert EMPTY_DIM.shifted(3).is_empty

    def test_clipped(self):
        assert DimSection(1, 10, 3).clipped(3, 8) == DimSection(4, 7, 3)


class TestDimSectionAlgebra:
    def test_contains_strided(self):
        assert DimSection(1, 15, 2).contains(DimSection(3, 9, 4))
        assert not DimSection(1, 15, 2).contains(DimSection(2, 8, 2))

    def test_intersect_offset_strides(self):
        # odds ∩ evens = empty
        assert DimSection(1, 15, 2).intersect(DimSection(2, 16, 2)).is_empty

    def test_intersect_crt(self):
        # 1,4,7,10,13 ∩ 3,7,11,15 = {7}; lcm(3,4)=12 so next would be 19
        got = DimSection(1, 13, 3).intersect(DimSection(3, 15, 4))
        assert got == DimSection(7, 7)

    def test_hull_exact_adjacent_strides(self):
        h, exact = DimSection(1, 15, 2).hull(DimSection(2, 16, 2))
        assert h == DimSection(1, 16, 1)
        assert exact

    def test_hull_inexact(self):
        h, exact = DimSection(1, 3).hull(DimSection(10, 12))
        assert h.contains(DimSection(1, 3)) and h.contains(DimSection(10, 12))
        assert not exact

    @given(dims_st(), dims_st())
    def test_contains_matches_sets(self, a, b):
        assert a.contains(b) == (elements(b) <= elements(a))

    @given(dims_st(), dims_st())
    def test_intersect_matches_sets(self, a, b):
        assert elements(a.intersect(b)) == (elements(a) & elements(b))

    @given(dims_st(), dims_st())
    def test_hull_is_superset(self, a, b):
        h, exact = a.hull(b)
        union = elements(a) | elements(b)
        assert union <= elements(h)
        if exact:
            assert elements(h) == union

    @given(dims_st(), dims_st())
    def test_union_count_exact(self, a, b):
        assert a.union_count(b) == len(elements(a) | elements(b))

    @given(dims_st())
    def test_intersect_self_identity(self, a):
        assert elements(a.intersect(a)) == elements(a)

    @given(dims_st(), dims_st())
    def test_intersect_commutes(self, a, b):
        assert a.intersect(b) == b.intersect(a)


class TestRSD:
    def test_whole(self):
        r = RSD.whole((4, 6))
        assert r.count() == 24
        assert r.contains(RSD.of((1, 4), (2, 5)))

    def test_contains_per_dim(self):
        big = RSD.of((1, 10), (1, 10))
        assert big.contains(RSD.of((2, 5), (3, 9, 2)))
        assert not big.contains(RSD.of((0, 5), (3, 9)))

    def test_empty_propagates(self):
        r = RSD.of((1, 4), (5, 3))
        assert r.is_empty
        assert r.count() == 0

    def test_intersect(self):
        a = RSD.of((1, 8), (1, 8, 2))
        b = RSD.of((4, 12), (2, 8, 2))
        assert a.intersect(b).is_empty  # second dim: odds vs evens

    def test_overlaps(self):
        a = RSD.of((1, 8), (1, 8))
        b = RSD.of((8, 12), (8, 8))
        assert a.overlaps(b)

    def test_hull_one_dim_differs_exact(self):
        a = RSD.of((1, 4), (1, 8))
        b = RSD.of((5, 8), (1, 8))
        h, exact = a.hull(b)
        assert h == RSD.of((1, 8), (1, 8))
        assert exact

    def test_hull_two_dims_differ_checks_cardinality(self):
        a = RSD.of((1, 2), (1, 2))
        b = RSD.of((5, 6), (5, 6))
        h, exact = a.hull(b)
        assert not exact
        assert h.contains(a) and h.contains(b)

    def test_bytes(self):
        assert RSD.of((1, 10)).bytes(8) == 80

    def test_union_count(self):
        a = RSD.of((1, 4))
        b = RSD.of((3, 6))
        assert a.union_count(b) == 6
