"""The service load harness, on its unit-test profile: two distinct
programs, thread-pool compiles, every gate exercised end to end."""

from __future__ import annotations

import dataclasses
import json

from repro.perf.history import service_headline
from repro.perf.servicebench import (
    TINY,
    build_corpus,
    format_service_bench,
    run_service_bench,
    write_service_bench,
)


def test_tiny_profile_end_to_end():
    payload = run_service_bench(profile=TINY)
    assert payload["ok"], payload
    assert payload["correctness"]["mismatches"] == 0
    assert payload["correctness"]["verified"] > 0
    assert payload["server_errors"] == 0

    phases = payload["phases"]
    assert phases["coalesce"]["compiled"] == 1
    assert (phases["coalesce"]["coalesced"]
            + phases["coalesce"]["memory_hits"]
            == phases["coalesce"]["requests"] - 1)
    assert phases["storm"]["dropped"] == 0
    assert (phases["storm"]["client_high_water"]
            >= TINY.conns * TINY.window)
    assert phases["disk"]["disk_hits"] == payload["corpus"]["distinct"]
    assert phases["disk"]["misses"] == 0
    assert phases["quota"]["rejected"] >= 1
    assert phases["quota"]["other_statuses"] == 0
    assert payload["access_log"]["ok"]
    # tiny profile skips the latency gate (timings too small to trust)
    assert payload["regression"]["required_ratio"] is None
    assert payload["regression"]["ok"]

    text = format_service_bench(payload)
    assert "SERVICE BENCH OK" in text
    assert "coalesce" in text

    headline = service_headline(payload)
    assert headline["ok"] is True
    assert headline["mismatches"] == 0
    json.dumps(headline)  # must be one JSONL-able line


def test_write_service_bench_payload_and_history(tmp_path):
    out = tmp_path / "BENCH_service.json"
    payload = write_service_bench(path=str(out), profile=TINY)
    assert payload["ok"]
    on_disk = json.loads(out.read_text())
    assert on_disk["corpus"]["distinct"] == payload["corpus"]["distinct"]
    history = (tmp_path / "BENCH_history.jsonl").read_text().splitlines()
    record = json.loads(history[-1])
    assert record["kind"] == "service"
    assert record["ok"] is True


def test_corpus_is_distinct_by_key():
    corpus = build_corpus(TINY)
    assert len(corpus) == len(TINY.perturbations)
    assert len({item.key for item in corpus}) == len(corpus)
    bigger = dataclasses.replace(
        TINY, strategies=("orig", "comb"), benchmarks=None
    )
    corpus = build_corpus(bigger)
    assert len(corpus) == 6 * 2 * len(TINY.perturbations)
    assert len({item.key for item in corpus}) == len(corpus)
