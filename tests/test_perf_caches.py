"""Cache-ablation equivalence suite.

Every memoized analysis cache (section, dependence, loop-context,
combinability, subsumption) sits behind ``CompilerOptions.enable_caches``.
The caches are pure speedups: compiling with them on and off must produce
*identical* schedules — same Figure-10 message counts, same placement
report, byte for byte — on every paper benchmark, every strategy, and on
randomly generated programs.  This suite is the proof obligation for that
claim, plus correctness tests for the batch driver's content-hash result
cache and the O(1) dominator-depth table.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings

from repro.codegen.report import schedule_report
from repro.core.context import AnalysisContext, CompilerOptions
from repro.core.pipeline import Strategy, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize
from repro.perf.batch import BatchCompiler, BatchJob, job_key
from repro.perf.bench import synthetic_program

from test_property_pipeline import program_source

CACHED = CompilerOptions()
UNCACHED = CompilerOptions(enable_caches=False)


def _schedule_fingerprint(source, strategy, options, params=None):
    result = compile_program(source, params, strategy, options)
    return (
        result.call_sites(),
        result.call_sites_by_kind(),
        schedule_report(result),
    )


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
@pytest.mark.parametrize("strategy", list(Strategy))
def test_caches_do_not_change_benchmark_schedules(name, strategy):
    """Figure-10 counts and the full placement report are identical with
    caches on and off, for every benchmark x strategy pair."""
    source = BENCHMARKS[name]
    cached = _schedule_fingerprint(source, strategy, CACHED)
    uncached = _schedule_fingerprint(source, strategy, UNCACHED)
    assert cached == uncached


def test_caches_do_not_change_synthetic_schedule():
    source = synthetic_program(16)
    assert _schedule_fingerprint(
        source, Strategy.GLOBAL, CACHED
    ) == _schedule_fingerprint(source, Strategy.GLOBAL, UNCACHED)


@settings(max_examples=25, deadline=None)
@given(source=program_source())
def test_caches_do_not_change_random_schedules(source):
    for strategy in Strategy:
        assert _schedule_fingerprint(
            source, strategy, CACHED
        ) == _schedule_fingerprint(source, strategy, UNCACHED)


def test_cache_stats_track_lookups_only_when_enabled():
    source = BENCHMARKS["shallow"]
    cached = compile_program(source, options=CACHED)
    rates = cached.ctx.cache_stats.as_dict()
    assert rates["section"]["hits"] + rates["section"]["misses"] > 0
    assert rates["dependence"]["hits"] + rates["dependence"]["misses"] > 0

    uncached = compile_program(source, options=UNCACHED)
    for stats in uncached.ctx.cache_stats.as_dict().values():
        assert stats["hits"] == 0 and stats["misses"] == 0


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_subsumes_cache_hits_across_strategies(name):
    """The subsumption verdict cache is keyed canonically (Use-identity
    pair + hash-consed section pair), so the shared-context multi-strategy
    compile must actually reuse verdicts — a nonzero hit rate on every
    benchmark.  Guards against regressing to a dead cache key."""
    from repro.core.pipeline import compile_all_strategies

    results = compile_all_strategies(BENCHMARKS[name], options=CACHED)
    ctx = next(iter(results.values())).ctx
    # Strategies share one context by construction.
    assert all(r.ctx is ctx for r in results.values())
    subs = ctx.cache_stats.as_dict().get("subsumes")
    assert subs is not None and subs["hits"] > 0, subs


# -- dominator depth table ---------------------------------------------------


def _elaborated(source, params=None):
    program = parse(source)
    info = elaborate(program, params)
    scalarized = scalarize(program, info)
    return elaborate(scalarized, params)


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_dominator_depth_matches_parent_walk(name):
    """The O(1) depth table agrees with the idom parent-chain walk it
    replaced, on every node of every benchmark CFG."""
    ctx = AnalysisContext(_elaborated(BENCHMARKS[name]))
    dom = ctx.dom
    for node in ctx.cfg.nodes:
        depth = 0
        cursor = node
        while True:
            parent = dom.dom_tree_parent(cursor)
            if parent is None:
                break
            depth += 1
            cursor = parent
        assert dom.dominator_depth(node) == depth


# -- batch driver ------------------------------------------------------------

SHALLOW_JOB = BatchJob(name="shallow", source=BENCHMARKS["shallow"])


def test_job_key_is_stable_and_content_sensitive():
    assert job_key(SHALLOW_JOB) == job_key(
        dataclasses.replace(SHALLOW_JOB, name="renamed")
    ), "the job name must not affect the content hash"
    assert job_key(SHALLOW_JOB) != job_key(
        dataclasses.replace(SHALLOW_JOB, source=SHALLOW_JOB.source + "\n")
    )
    assert job_key(SHALLOW_JOB) != job_key(
        dataclasses.replace(SHALLOW_JOB, strategy="orig")
    )
    assert job_key(SHALLOW_JOB) != job_key(
        dataclasses.replace(SHALLOW_JOB, params={"n": 128})
    )
    assert job_key(SHALLOW_JOB) != job_key(
        dataclasses.replace(SHALLOW_JOB, options=UNCACHED)
    )
    # Spelled-out strategy aliases hash identically.
    assert job_key(
        dataclasses.replace(SHALLOW_JOB, options=CompilerOptions())
    ) == job_key(SHALLOW_JOB)


def test_batch_cache_hit_matches_fresh_compile():
    compiler = BatchCompiler()
    (fresh,) = compiler.run([SHALLOW_JOB])
    (hit,) = compiler.run([dataclasses.replace(SHALLOW_JOB, name="again")])

    assert not fresh.from_cache and hit.from_cache
    assert hit.name == "again"
    assert hit.elapsed == 0.0
    for field in ("key", "strategy", "call_sites", "call_sites_by_kind",
                  "entries", "eliminated", "error"):
        assert getattr(hit, field) == getattr(fresh, field)

    # And the summary matches a direct compile.
    direct = compile_program(SHALLOW_JOB.source)
    assert fresh.call_sites == direct.call_sites()
    assert fresh.call_sites_by_kind == direct.call_sites_by_kind()
    assert fresh.entries == len(direct.entries)


def test_batch_dedupes_within_one_run():
    compiler = BatchCompiler()
    results = compiler.run([SHALLOW_JOB, SHALLOW_JOB, SHALLOW_JOB])
    assert [r.from_cache for r in results] == [False, True, True]
    assert compiler.stats.compiled == 1
    assert compiler.stats.deduped == 2
    assert compiler.stats.cache_hits == 0

    compiler.run([SHALLOW_JOB])
    assert compiler.stats.cache_hits == 1
    assert compiler.stats.compiled == 1


def test_batch_surfaces_errors_without_killing_the_run():
    bad = BatchJob(name="bad", source="PROGRAM broken\nEND oops")
    compiler = BatchCompiler()
    results = compiler.run([bad, SHALLOW_JOB])
    assert not results[0].ok and results[0].error
    assert results[1].ok
    assert compiler.stats.errors == 1


def test_batch_results_independent_of_cache_options():
    """A batch compiled with caches off reports the same schedules."""
    jobs = [
        BatchJob(name=name, source=source, options=options)
        for name, source in sorted(BENCHMARKS.items())[:2]
        for options in (CACHED, UNCACHED)
    ]
    results = BatchCompiler().run(jobs)
    by_name: dict[str, list] = {}
    for r in results:
        by_name.setdefault(r.name, []).append(r)
    for name, (on, off) in by_name.items():
        assert on.call_sites == off.call_sites
        assert on.call_sites_by_kind == off.call_sites_by_kind
        assert on.entries == off.entries
