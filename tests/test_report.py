"""Report / annotated-listing / schedule-lowering tests."""

from __future__ import annotations


from repro.codegen.report import annotated_listing, schedule_report
from repro.codegen.spmd import anchor_of_position, lower_schedule
from repro.core.pipeline import Strategy, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.ir.cfg import NodeKind, Position


class TestAnchors:
    def test_after_statement_anchor(self, fig4_source):
        result = compile_program(fig4_source, strategy="orig")
        ctx = result.ctx
        node = next(n for n in ctx.cfg.nodes if n.stmts)
        anchor = anchor_of_position(ctx, Position(node.id, 0))
        assert anchor == ("after_stmt", node.stmts[0].sid)

    def test_preheader_anchor(self, stencil_source):
        result = compile_program(stencil_source, strategy="orig")
        ctx = result.ctx
        loop = ctx.cfg.loops[0]
        anchor = anchor_of_position(ctx, Position(loop.preheader.id, -1))
        assert anchor == ("loop_pre", loop.stmt.sid)

    def test_header_anchor(self, stencil_source):
        result = compile_program(stencil_source, strategy="orig")
        ctx = result.ctx
        loop = ctx.cfg.loops[0]
        anchor = anchor_of_position(ctx, Position(loop.header.id, -1))
        assert anchor == ("loop_top", loop.stmt.sid)

    def test_postexit_anchor(self, stencil_source):
        result = compile_program(stencil_source, strategy="orig")
        ctx = result.ctx
        loop = ctx.cfg.loops[0]
        anchor = anchor_of_position(ctx, Position(loop.postexit.id, -1))
        assert anchor == ("loop_post", loop.stmt.sid)

    def test_entry_anchor(self, fig4_source):
        result = compile_program(fig4_source, strategy="orig")
        ctx = result.ctx
        assert anchor_of_position(ctx, Position(ctx.cfg.entry.id, -1)) == ("start",)

    def test_join_anchor_names_the_if(self, fig4_source):
        result = compile_program(fig4_source, strategy="orig")
        ctx = result.ctx
        join = next(n for n in ctx.cfg.nodes if n.kind is NodeKind.JOIN)
        kind, sid = anchor_of_position(ctx, Position(join.id, -1))
        assert kind == "after_stmt"
        from repro.frontend import ast_nodes as ast

        stmt = next(s for s in ctx.info.program.statements() if s.sid == sid)
        assert isinstance(stmt, ast.If)

    def test_every_placed_op_anchors(self):
        for program, params in (
            ("shallow", {"n": 8, "nsteps": 2, "pr": 2, "pc": 2}),
            ("gravity", {"n": 8, "pr": 2, "pc": 2}),
        ):
            for strategy in Strategy:
                result = compile_program(
                    BENCHMARKS[program], params=params, strategy=strategy
                )
                sched = lower_schedule(result)
                anchored = sum(len(ops) for ops in sched.anchors.values())
                assert anchored == len(result.placed)


class TestReports:
    def test_schedule_report_mentions_everything(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        text = schedule_report(result)
        assert "fig4" in text
        assert "call sites" in text
        assert "COMM shift" in text
        assert "covers" in text  # absorbed entries listed

    def test_annotated_listing_interleaves_comm(self, fig4_source):
        result = compile_program(fig4_source, strategy="comb")
        text = annotated_listing(result)
        assert text.startswith("PROGRAM fig4")
        assert "! COMM" in text
        assert text.rstrip().endswith("END PROGRAM")
        # communication appears before the consuming loop nest
        comm_at = text.index("! COMM")
        use_at = text.index("c(i, j)")
        assert comm_at < use_at

    def test_orig_report_counts(self, fig4_source):
        result = compile_program(fig4_source, strategy="orig")
        text = schedule_report(result)
        assert "4 call sites" in text

    def test_report_for_reductions(self):
        result = compile_program(BENCHMARKS["gravity"], strategy="comb")
        text = schedule_report(result)
        assert "reduction" in text


class TestListingParseability:
    def test_annotated_listing_is_valid_source(self, fig4_source):
        """COMM annotations are comments; the listing must re-parse
        (without declarations it needs them spliced back in)."""
        from repro.frontend.parser import parse
        from repro.frontend.printer import unparse

        from repro.frontend import ast_nodes as ast

        result = compile_program(fig4_source, strategy="comb")
        listing = annotated_listing(result)
        # Render just the declarations via the unparser and splice the
        # annotated body after them.
        decl_only = unparse(
            ast.Program(result.program.name, result.program.decls, [])
        ).splitlines()
        body = listing.splitlines()
        spliced = decl_only[:-1] + body[1:]  # drop END, drop PROGRAM line
        reparsed = parse("\n".join(spliced))
        assert reparsed.name == result.program.name
        # same number of executable statements as the scalarized program
        assert len(list(reparsed.statements())) == len(
            list(result.program.statements())
        )
