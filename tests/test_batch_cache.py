"""The batch driver on the shared two-tier ScheduleCache: disk-tier
reuse across runs, durability policy, and result streaming."""

from __future__ import annotations

import dataclasses

from repro.perf.batch import BatchCompiler, BatchJob, benchmark_jobs
from repro.perf.cache import ScheduleCache

GOOD = """PROGRAM good
PARAM n = 8
PROCESSORS p(2)
REAL a(n)
REAL b(n)
DISTRIBUTE a(BLOCK) ONTO p
DISTRIBUTE b(BLOCK) ONTO p
b(2:n-1) = a(1:n-2)
END PROGRAM
"""

BAD = "PROGRAM broken\nREAL a(n)\nEND PROGRAM\n"


def test_second_run_hits_disk_tier_at_100_percent(tmp_path):
    jobs = benchmark_jobs(strategies=("comb", "nored"))
    first = BatchCompiler(cache_dir=tmp_path)
    results = first.run(jobs)
    assert all(r.ok for r in results)
    distinct = first.stats.compiled
    assert distinct == len(jobs)

    # a fresh compiler (fresh memory tier) over the same directory must
    # serve every job from disk: zero compiles, zero misses
    second = BatchCompiler(cache_dir=tmp_path)
    results2 = second.run(jobs)
    assert all(r.from_cache for r in results2)
    assert second.stats.compiled == 0
    assert second.cache.stats.disk_hits == distinct
    assert second.cache.stats.memory_hits == 0
    assert second.cache.stats.misses == 0
    by_name = {r.name: r for r in results}
    for r in results2:
        assert r.call_sites == by_name[r.name].call_sites
        assert r.call_sites_by_kind == by_name[r.name].call_sites_by_kind


def test_failures_are_not_persisted_to_disk(tmp_path):
    jobs = [BatchJob(name="bad", source=BAD)]
    first = BatchCompiler(cache_dir=tmp_path)
    (res,) = first.run(jobs)
    assert not res.ok

    second = BatchCompiler(cache_dir=tmp_path)
    (res2,) = second.run(jobs)
    assert not res2.ok
    assert not res2.from_cache  # re-derived, not served from disk
    assert second.cache.stats.disk_hits == 0


def test_shared_cache_instance_serves_memory_hits():
    cache = ScheduleCache()
    jobs = [BatchJob(name="good", source=GOOD)]
    BatchCompiler(cache=cache).run(jobs)
    other = BatchCompiler(cache=cache)
    (res,) = other.run(jobs)
    assert res.from_cache
    assert other.stats.compiled == 0
    assert cache.stats.memory_hits >= 1


def test_on_result_streams_every_delivery(tmp_path):
    seen: list[tuple[str, bool]] = []
    jobs = [
        BatchJob(name="a", source=GOOD),
        BatchJob(name="b", source=GOOD,
                 options=None),  # same key as "a": deduped
        BatchJob(name="c", source=BAD),
    ]
    compiler = BatchCompiler(
        cache_dir=tmp_path,
        on_result=lambda r: seen.append((r.name, r.from_cache)),
    )
    results = compiler.run(jobs)
    assert len(results) == 3
    # one callback per *delivered* result, fresh and cached alike
    assert sorted(n for n, _ in seen) == ["a", "b", "c"]
    fresh = [n for n, cached in seen if not cached]
    assert "a" in fresh and "c" in fresh


def test_checkpoint_and_cache_dir_compose(tmp_path):
    jobs = [BatchJob(name="good", source=GOOD)]
    ckpt = tmp_path / "ckpt.json"
    cache_dir = tmp_path / "cache"
    BatchCompiler(checkpoint_path=ckpt, cache_dir=cache_dir).run(jobs)
    assert ckpt.exists()
    # resume path: the checkpoint seeds the cache, disk tier intact
    resumed = BatchCompiler(checkpoint_path=ckpt, cache_dir=cache_dir)
    (res,) = resumed.run(jobs)
    assert res.from_cache
    assert resumed.stats.resumed == 1


def test_results_survive_cache_eviction_within_run(tmp_path):
    # a pathologically small memory budget forces evictions mid-run; the
    # disk tier must still deliver every result
    cache = ScheduleCache(memory_budget_bytes=512, cache_dir=tmp_path)
    jobs = benchmark_jobs(strategies=("comb",))
    compiler = BatchCompiler(cache=cache)
    results = compiler.run(jobs)
    assert all(r.ok for r in results)
    assert cache.stats.evictions > 0
    # second run: fresh memory, everything readable from disk
    cache2 = ScheduleCache(memory_budget_bytes=512, cache_dir=tmp_path)
    results2 = BatchCompiler(cache=cache2).run(jobs)
    assert all(r.from_cache for r in results2)


def test_repeat_run_uses_memory_tier():
    compiler = BatchCompiler()
    jobs = [BatchJob(name="good", source=GOOD)]
    compiler.run(jobs)
    (res,) = compiler.run(jobs)
    assert res.from_cache and res.elapsed == 0.0
    assert compiler.cache.stats.memory_hits >= 1


def test_distinct_options_do_not_collide(tmp_path):
    from repro.core.context import CompilerOptions

    jobs = [
        BatchJob(name="default", source=GOOD),
        BatchJob(name="nocache", source=GOOD,
                 options=CompilerOptions(enable_caches=False)),
    ]
    compiler = BatchCompiler(cache_dir=tmp_path)
    results = compiler.run(jobs)
    assert compiler.stats.compiled == 2  # different keys, no dedup
    assert all(r.ok for r in results)


def test_dataclass_replace_keeps_cache_copies_independent():
    compiler = BatchCompiler()
    jobs = [BatchJob(name="good", source=GOOD)]
    (first,) = compiler.run(jobs)
    (second,) = compiler.run(jobs)
    assert second.from_cache and not first.from_cache
    assert dataclasses.replace(second, from_cache=False) != second
