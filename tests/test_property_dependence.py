"""Property-based dependence testing: random affine def/use pairs checked
against the brute-force oracle from test_dependence."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import ast_nodes as ast
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.ir.cfg import CFG
from repro.dependence.tests import DependenceTester

from test_dependence import oracle

N = 10


@st.composite
def subscript(draw, var: str) -> str:
    """A random affine subscript in one loop variable, kept in bounds for
    var in [2, N-1] with |coeff| <= 1 and small offsets."""
    coeff = draw(st.sampled_from([0, 1, 1, 1]))
    if coeff == 0:
        return str(draw(st.integers(1, N)))
    offset = draw(st.integers(-1, 1))
    if offset == 0:
        return var
    return f"{var} {'+' if offset > 0 else '-'} {abs(offset)}"


@st.composite
def dep_program(draw):
    """Two statements over a 2-d array in loop nests with random affine
    subscripts; the def may sit in the same nest as the use or in a
    preceding one."""
    same_nest = draw(st.booleans())
    wsub1 = draw(subscript("i"))
    wsub2 = draw(subscript("j"))
    rsub1 = draw(subscript("i"))
    rsub2 = draw(subscript("j"))
    write = f"a({wsub1}, {wsub2}) = b(i, j) + 1"
    read = f"b(i, j) = a({rsub1}, {rsub2})"
    order = draw(st.booleans())
    if same_nest:
        body = f"{write}\n{read}" if order else f"{read}\n{write}"
        nest = (
            f"DO i = 2, {N - 1}\nDO j = 2, {N - 1}\n{body}\nEND DO\nEND DO"
        )
    else:
        nest = (
            f"DO i = 2, {N - 1}\nDO j = 2, {N - 1}\n{write}\nEND DO\nEND DO\n"
            f"DO i = 2, {N - 1}\nDO j = 2, {N - 1}\n{read}\nEND DO\nEND DO"
        )
    return f"PROGRAM dp\nREAL a({N}, {N})\nREAL b({N}, {N})\n{nest}\nEND"


@settings(max_examples=80, deadline=None)
@given(source=dep_program())
def test_tester_is_sound_against_oracle(source):
    program = parse(source)
    info = elaborate(program)
    cfg = CFG(program)
    tester = DependenceTester(info, cfg)

    stmts = [s for s in cfg.assigns()]
    def_stmt = next(s for s in stmts if s.lhs.name == "a")
    use_stmt = next(s for s in stmts if s.lhs.name == "b")
    def_ref = def_stmt.lhs
    use_ref = next(r for r in ast.array_refs(use_stmt.rhs) if r.name == "a")

    got = tester.flow_dependence(def_stmt, def_ref, use_stmt, use_ref)
    want = oracle(info, cfg, def_stmt, def_ref, use_stmt, use_ref)

    # Soundness: every real carried level and the loop-independent flag
    # must be reported.
    assert want.carried_levels <= got.carried_levels, (source, want, got)
    assert (not want.loop_independent) or got.loop_independent, source
    # Consistency: the common nesting level agrees with the CFG.
    assert got.cnl == want.cnl


@settings(max_examples=40, deadline=None)
@given(source=dep_program())
def test_tester_is_exact_on_unit_coefficients(source):
    """With |coeff| = 1 subscripts and rectangular bounds the GCD +
    interval test is exact: no spurious carried levels either."""
    program = parse(source)
    info = elaborate(program)
    cfg = CFG(program)
    tester = DependenceTester(info, cfg)

    stmts = [s for s in cfg.assigns()]
    def_stmt = next(s for s in stmts if s.lhs.name == "a")
    use_stmt = next(s for s in stmts if s.lhs.name == "b")
    use_ref = next(r for r in ast.array_refs(use_stmt.rhs) if r.name == "a")

    got = tester.flow_dependence(def_stmt, def_stmt.lhs, use_stmt, use_ref)
    want = oracle(info, cfg, def_stmt, def_stmt.lhs, use_stmt, use_ref)
    # The oracle takes last-writer-only dependences; the tester reports
    # pairwise feasibility, so "got" may include levels the last-writer
    # filter hides — but on these single-writer programs they coincide
    # unless the direction is anti (write after read in the same
    # iteration), which the loop-independent flag excludes.
    extra = got.carried_levels - want.carried_levels
    for level in extra:
        # any extra level must at least be *pairwise* consistent: there
        # must exist write/read iterations matching at that level
        assert level <= got.cnl
