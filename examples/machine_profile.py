#!/usr/bin/env python3
"""Regenerate the paper's Figure 5: bcopy vs network bandwidth, and the
combining threshold derived from the knee.

Prints an ASCII rendition of the three curves per machine on a log-x
axis, like the paper's plots.

Run:  python examples/machine_profile.py
"""

from repro.evaluation.fig5_profile import profile_machine, size_axis
from repro.machine.model import MACHINES


def ascii_curve(values: list[float], width: int = 40) -> list[int]:
    top = max(values)
    return [round(v / top * (width - 1)) for v in values]


def main() -> None:
    sizes = size_axis(16, 4 * 1024 * 1024)
    for name, machine in MACHINES.items():
        profile = profile_machine(machine, sizes)
        print(f"=== Figure 5 — {name} ===")
        print(f"{'bytes':>9s}  {'bcopy':>7s} {'inject':>7s} {'recv':>7s}"
              f"   (MB/s; bars: receive bandwidth)")
        bars = ascii_curve([p.receive_bw for p in profile.points])
        for p, bar in zip(profile.points, bars):
            print(
                f"{p.nbytes:9d}  {p.bcopy_bw / 1e6:7.1f} "
                f"{p.inject_bw / 1e6:7.1f} {p.receive_bw / 1e6:7.1f}   "
                + "#" * bar
            )
        print(f"  startup-amortization knee (80% of peak): "
              f"{profile.knee(0.8):,} bytes")
        print(f"  bcopy cache cliff: {profile.cache_cliff():,} bytes")
        print(f"  => combining threshold used by the compiler: 20 KB "
              f"(paper §4.7)")
        print()


if __name__ == "__main__":
    main()
