#!/usr/bin/env python3
"""The paper's Figure 3: earliest placement is sensitive to syntax.

Three semantically equivalent codes define ``a`` and ``b`` and then read
both with the same shift.  After the scalarizer splits the F90 array
statements into separate loops, *earliest* placement pins the two
messages at two different definition points and cannot combine them; the
global algorithm evaluates the whole candidate range and combines them in
every version.

Run:  python examples/syntax_sensitivity.py
"""

from repro import Strategy, compile_program

VERSIONS = {
    "F90 source (scalarizer splits the loops)": """
PROGRAM v1
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO pr
  DISTRIBUTE b(BLOCK) ONTO pr
  DISTRIBUTE c(BLOCK) ONTO pr
  a(:) = 3
  b(:) = 4
  c(2:n) = a(1:n-1) + b(1:n-1)
END PROGRAM
""",
    "hand-fused definition loop": """
PROGRAM v2
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO pr
  DISTRIBUTE b(BLOCK) ONTO pr
  DISTRIBUTE c(BLOCK) ONTO pr
  DO i = 1, n
    a(i) = 3
    b(i) = 4
  END DO
  DO i = 2, n
    c(i) = a(i-1) + b(i-1)
  END DO
END PROGRAM
""",
    "separate scalarized loops (what pHPF's scalarizer emits)": """
PROGRAM v3
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  DISTRIBUTE a(BLOCK) ONTO pr
  DISTRIBUTE b(BLOCK) ONTO pr
  DISTRIBUTE c(BLOCK) ONTO pr
  DO i = 1, n
    a(i) = 3
  END DO
  DO i = 1, n
    b(i) = 4
  END DO
  DO i = 2, n
    c(i) = a(i-1) + b(i-1)
  END DO
END PROGRAM
""",
}


def main() -> None:
    print(f"{'version':55s} {'earliest':>9s} {'global':>7s}")
    print("-" * 75)
    for name, source in VERSIONS.items():
        nored = compile_program(source, strategy=Strategy.EARLIEST)
        comb = compile_program(source, strategy=Strategy.GLOBAL)
        print(f"{name:55s} {nored.call_sites():9d} {comb.call_sites():7d}")
    print()
    print("Earliest placement emits 2 messages whenever the definitions sit")
    print("in different intervals; the global algorithm combines them into")
    print("one message in every version — placement robust to syntax.")


if __name__ == "__main__":
    main()
