#!/usr/bin/env python3
"""Beyond nearest-neighbour: general communication patterns.

The paper's framework handles any sender→receiver relation; NNC and
reductions just combine best.  This example compiles a small pipeline
with a transposed access (a general many-to-many pattern), a replicated
consumer (allgather), and a stencil (NNC), and shows how each classifies,
places, and costs out — and that the SPMD execution still matches the
sequential semantics exactly.

Run:  python examples/transpose_pipeline.py
"""

import numpy as np

from repro import SP2, Strategy, compile_program, schedule_report, simulate
from repro.runtime.interp import interpret
from repro.runtime.spmd import execute_spmd

SOURCE = """
PROGRAM pipeline
  PARAM n = 24
  PROCESSORS procs(2, 2)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL a(n, n) ALIGN WITH t
  REAL b(n, n) ALIGN WITH t
  REAL c(n, n) ALIGN WITH t
  REAL mirror(n, n)
  REAL s

  ! stencil phase: nearest-neighbour communication
  b(2:n-1, 2:n-1) = a(1:n-2, 2:n-1) + a(3:n, 2:n-1)

  ! transpose phase: a general many-to-many pattern
  DO i = 1, n
    DO j = 1, n
      c(i, j) = b(j, i)
    END DO
  END DO

  ! replicated consumer: every processor needs the whole section
  mirror(1:n, 1:n) = c(1:n, 1:n)

  ! global reduction
  s = SUM(c(1:n, 1:n))
END PROGRAM
"""


def main() -> None:
    result = compile_program(SOURCE, strategy=Strategy.GLOBAL)

    print("=== pattern classification ===")
    for entry in result.entries:
        print(f"  {entry.label:12s} -> {entry.pattern}")
    print()

    print("=== placed schedule ===")
    print(schedule_report(result))
    print()

    print("=== SPMD execution vs sequential semantics ===")
    state, stats = execute_spmd(result)
    ref = interpret(result.info)
    ok = all(np.array_equal(state[k], ref[k]) for k in ref)
    print(f"  exact match: {ok}; {stats.messages} wire messages, "
          f"{stats.bytes_moved} bytes, {stats.reductions} reductions")
    print()

    print("=== simulated cost on the SP2 ===")
    report = simulate(result, SP2)
    for op_cost in report.comm_ops:
        kind = op_cost.op.kind
        print(f"  {kind:10s}: {op_cost.messages_per_exec:3d} partner msgs, "
              f"{op_cost.bytes_per_exec:6d} B, {op_cost.total_time * 1e6:8.1f} µs")
    print(f"  total comm {report.comm_time * 1e3:.2f} ms vs compute "
          f"{report.compute_time * 1e3:.2f} ms")
    print()
    print("General patterns dominate the bill — which is why HPF codes are")
    print("written to keep communication nearest-neighbour, and why the")
    print("paper's combining targets NNC and reductions first.")


if __name__ == "__main__":
    main()
