#!/usr/bin/env python3
"""Bring your own kernel: write a mini-HPF program, compile it, inspect
the analysis, and validate the schedule by concrete execution.

This example builds a damped-Jacobi sweep, walks through the per-use
analysis results (Earliest / Latest / candidate chain), and shows how the
schedule changes when the processor grid changes (shifts along an axis
with a single processor become local and their messages disappear).

Run:  python examples/custom_stencil.py
"""

from repro import Strategy, check_schedule, compile_program
from repro.core.pipeline import analyze_entries
from repro.core.context import AnalysisContext
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize

SOURCE = """
PROGRAM jacobi
  PARAM n = 32
  PARAM pr = 4
  PARAM pc = 2
  PARAM nsweeps = 10
  PROCESSORS procs(pr, pc)
  TEMPLATE t(n, n)
  DISTRIBUTE t(BLOCK, BLOCK) ONTO procs
  REAL u(n, n) ALIGN WITH t
  REAL f(n, n) ALIGN WITH t

  REAL w(n, n) ALIGN WITH t

  DO sweep = 1, nsweeps
    ! five-point relaxation into the work array
    w(2:n-1, 2:n-1) = 0.25 * (u(1:n-2, 2:n-1) + u(3:n, 2:n-1) + &
        u(2:n-1, 1:n-2) + u(2:n-1, 3:n)) + f(2:n-1, 2:n-1)
    ! damped update (perfectly aligned: no communication)
    u(2:n-1, 2:n-1) = 0.8 * u(2:n-1, 2:n-1) + 0.2 * w(2:n-1, 2:n-1)
  END DO
END PROGRAM
"""


def inspect_analysis() -> None:
    program = parse(SOURCE)
    info = elaborate(program)
    scalarized = scalarize(program, info)
    ctx = AnalysisContext(elaborate(scalarized))
    entries = analyze_entries(ctx)

    print(f"=== per-use analysis ({len(entries)} communication entries) ===")
    for e in entries[:6]:
        print(f"  {e.label:12s} {str(e.pattern.mapping):14s} "
              f"E = {ctx.describe_position(e.earliest_pos):24s} "
              f"L = {ctx.describe_position(e.latest_pos):24s} "
              f"candidates = {len(e.candidates)}")
    if len(entries) > 6:
        print(f"  ... and {len(entries) - 6} more")
    print()


def compile_and_validate() -> None:
    print("=== call sites per version ===")
    for strategy in Strategy:
        result = compile_program(SOURCE, strategy=strategy)
        print(f"  {strategy.value:6s}: {result.call_sites()}")
    print()

    result = compile_program(SOURCE, params={"n": 12, "nsweeps": 2,
                                             "pr": 2, "pc": 2})
    stats = check_schedule(result)
    print(f"=== schedule validated by execution: {stats.deliveries} "
          f"deliveries, {stats.reads_checked} reads checked ===")
    print()


def grid_sensitivity() -> None:
    print("=== same code, different processor grids ===")
    for pr, pc in ((4, 2), (2, 4), (8, 1), (1, 8)):
        result = compile_program(SOURCE, params={"pr": pr, "pc": pc})
        kinds = result.call_sites_by_kind()
        print(f"  {pr}x{pc}: {result.call_sites()} call sites {kinds}")
    print("(an axis with one processor makes shifts along it local, so a")
    print(" 1-d grid halves the exchanges)")


def main() -> None:
    inspect_analysis()
    compile_and_validate()
    grid_sensitivity()


if __name__ == "__main__":
    main()
