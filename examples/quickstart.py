#!/usr/bin/env python3
"""Quickstart: compile a small HPF-style program and inspect what the
global communication-placement algorithm does with it.

Run:  python examples/quickstart.py
"""

from repro import (
    Strategy,
    annotated_listing,
    check_schedule,
    compile_all_strategies,
    schedule_report,
)

# The paper's Figure 4 running example: two strided writes of b, a
# conditional definition of a, and two loop nests reading both arrays
# shifted by one row.
SOURCE = """
PROGRAM fig4
  PARAM n = 16
  PROCESSORS pr(4)
  REAL a(n, n)
  REAL b(n, n)
  REAL c(n, n)
  REAL d(n, n)
  DISTRIBUTE a(BLOCK, *) ONTO pr
  DISTRIBUTE b(BLOCK, *) ONTO pr
  DISTRIBUTE c(BLOCK, *) ONTO pr
  DISTRIBUTE d(BLOCK, *) ONTO pr
  REAL cond
  b(:, 1:n:2) = 1
  b(:, 2:n:2) = 2
  IF cond > 0 THEN
    a(:, :) = 3
  ELSE
    a(:, :) = d(:, :)
  END IF
  DO i = 2, n
    DO j = 1, n, 2
      c(i, j) = a(i-1, j) + b(i-1, j)
    END DO
    DO j = 1, n
      c(i, j) = c(i, j) + a(i-1, j) * b(i-1, j)
    END DO
  END DO
END PROGRAM
"""


def main() -> None:
    results = compile_all_strategies(SOURCE)

    print("=== static communication call sites per compiler version ===")
    for strategy in Strategy:
        result = results[strategy]
        print(f"  {strategy.value:6s}: {result.call_sites()} "
              f"({result.call_sites_by_kind()})")
    print()

    comb = results[Strategy.GLOBAL]
    print("=== the global algorithm's schedule ===")
    print(schedule_report(comb))
    print()

    print("=== scalarized program with communication interleaved ===")
    print(annotated_listing(comb))
    print()

    print("=== executing the schedule to verify placement safety ===")
    for strategy, result in results.items():
        stats = check_schedule(result)
        print(f"  {strategy.value:6s}: {stats.deliveries} deliveries, "
              f"{stats.reads_checked} remote reads verified fresh")


if __name__ == "__main__":
    main()
