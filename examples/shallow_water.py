#!/usr/bin/env python3
"""The NCAR shallow-water benchmark end to end (paper Figure 2 + the
shallow rows of Figure 10).

Compiles the shallow-water code with the three compiler versions, shows
the static message counts (20 / 14 / 8 — exactly the paper's table), then
simulates the SP2 and NOW machine models over a problem-size sweep and
prints the normalized running times of the paper's bar charts.

Run:  python examples/shallow_water.py
"""

from repro import NOW, SP2, Strategy, compile_all_strategies, simulate
from repro.evaluation.programs import SHALLOW


def static_counts() -> None:
    print("=== static NNC exchanges per timestep (paper: 20 / 14 / 8) ===")
    results = compile_all_strategies(SHALLOW)
    for strategy in Strategy:
        result = results[strategy]
        print(f"  {strategy.value:6s}: {result.call_sites()} exchanges")
        if strategy is Strategy.GLOBAL:
            for pc in result.placed:
                arrays = "+".join(e.array for e in pc.entries)
                covered = [a.label for e in pc.entries for a in e.absorbed]
                extra = f" (also covers {', '.join(covered)})" if covered else ""
                print(f"      {pc.entries[0].pattern.mapping}: {arrays}{extra}")
    print()


def timed_sweep(machine, procs, sizes) -> None:
    pr, pc = procs
    print(f"=== simulated times on {machine.name} (P = {pr}x{pc}) ===")
    print(f"{'n':>6s} | {'orig':>8s} | {'nored':>14s} | {'comb':>14s}")
    for n in sizes:
        params = {"n": n, "pr": pr, "pc": pc}
        results = compile_all_strategies(SHALLOW, params=params)
        reports = {s: simulate(r, machine) for s, r in results.items()}
        base = reports[Strategy.ORIG].total_time
        row = f"{n:6d} | {base:7.3f}s"
        for s in (Strategy.EARLIEST, Strategy.GLOBAL):
            rep = reports[s]
            row += (f" | {rep.total_time:6.3f}s ({rep.total_time / base:4.2f})")
        comm_cut = (
            reports[Strategy.ORIG].comm_time / reports[Strategy.GLOBAL].comm_time
        )
        row += f"   comm cut {comm_cut:.1f}x"
        print(row)
    print()


def main() -> None:
    static_counts()
    timed_sweep(SP2, (5, 5), [256, 512, 1024])
    timed_sweep(NOW, (4, 2), [400, 450, 500])


if __name__ == "__main__":
    main()
