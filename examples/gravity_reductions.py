#!/usr/bin/env python3
"""The NPAC gravity code (paper Figure 1): combining nearest-neighbour
exchanges of a 3-d and a 2-d array, and combining global sums.

The interesting placements here:

* the four NNC exchanges on the plane ``g(i, :, :)`` combine pairwise with
  the four on the 2-d array ``glast`` — one message per direction carrying
  sections of *both* arrays (8 -> 4);
* the four boundary-row global sums in each of the two sum statements
  combine into a single reduction call each (8 -> 2).

Run:  python examples/gravity_reductions.py
"""

from repro import SP2, Strategy, compile_all_strategies, schedule_report, simulate
from repro.evaluation.programs import GRAVITY


def main() -> None:
    results = compile_all_strategies(GRAVITY)

    print("=== static call sites (paper: NNC 8/8/4, SUM 8/8/2) ===")
    for strategy in Strategy:
        kinds = results[strategy].call_sites_by_kind()
        print(f"  {strategy.value:6s}: NNC {kinds.get('shift', 0)}, "
              f"SUM {kinds.get('reduction', 0)}")
    print()

    comb = results[Strategy.GLOBAL]
    print("=== combined schedule ===")
    print(schedule_report(comb))
    print()

    print("=== simulated effect on the SP2 (n = 150, P = 25) ===")
    sized = compile_all_strategies(GRAVITY, params={"n": 150, "pr": 5, "pc": 5})
    base = None
    for strategy in Strategy:
        rep = simulate(sized[strategy], SP2)
        if base is None:
            base = rep.total_time
        print(
            f"  {strategy.value:6s}: total {rep.total_time:6.3f}s "
            f"(norm {rep.total_time / base:4.2f}), "
            f"comm {rep.comm_time:6.3f}s, "
            f"{rep.messages_per_proc} messages/processor"
        )


if __name__ == "__main__":
    main()
