"""Batch-compile driver benchmark: content-hash result caching.

An edit-compile loop recompiles a mostly unchanged program set; the batch
driver should pay only for changed content.  The benchmark compiles the
paper's benchmark suite cold, then re-runs the identical batch and
asserts the warm round is served almost entirely from the result cache —
at least an order of magnitude faster than compiling.

(Parallel speedup is deliberately *not* asserted: CI machines may expose
a single core, where the process pool only adds overhead.  The caching
win is machine-independent.)
"""

from __future__ import annotations

import time

from repro.perf.batch import BatchCompiler, benchmark_jobs

STRATEGIES = ("orig", "nored", "comb")


def _timed_round(compiler, jobs):
    t0 = time.perf_counter()
    results = compiler.run(jobs)
    return time.perf_counter() - t0, results


def test_bench_batch_result_cache(benchmark):
    jobs = benchmark_jobs(strategies=STRATEGIES)

    def cold_then_warm():
        compiler = BatchCompiler(workers=1)
        cold_s, cold = _timed_round(compiler, jobs)
        warm_s, warm = _timed_round(compiler, jobs)
        return compiler, cold_s, cold, warm_s, warm

    compiler, cold_s, cold, warm_s, warm = benchmark.pedantic(
        cold_then_warm, rounds=3, iterations=1
    )

    # Cold round compiled everything, warm round compiled nothing.
    assert all(r.ok for r in cold)
    assert not any(r.from_cache for r in cold)
    assert all(r.from_cache for r in warm)

    # Cached schedules are the compiled schedules.
    for c, w in zip(cold, warm):
        assert (c.call_sites, c.call_sites_by_kind) == (
            w.call_sites,
            w.call_sites_by_kind,
        )

    # Stats: 2 rounds x len(jobs), half served from cache.
    assert compiler.stats.jobs == 2 * len(jobs)
    assert compiler.stats.compiled == len(jobs)
    assert compiler.stats.cache_hits == len(jobs)
    assert compiler.stats.hit_rate == 0.5

    # The whole point: cache hits beat recompilation by a wide margin.
    assert warm_s < cold_s / 10, (
        f"warm batch {warm_s * 1000:.1f}ms not >=10x faster than cold "
        f"{cold_s * 1000:.1f}ms"
    )
    print(
        f"\n  cold {cold_s * 1000:7.1f}ms ({len(jobs)} jobs)"
        f"\n  warm {warm_s * 1000:7.1f}ms (all cache hits, "
        f"{cold_s / warm_s:.0f}x)"
    )
