"""Benchmark: dynamic per-processor message counts via real SPMD runs.

The paper's abstract claims 'the number of messages per processor goes
down by as much as a factor of nine' at compile time; this benchmark
measures the *runtime* counterpart by executing every benchmark on
simulated ranks and counting actual wire messages.  It also demonstrates
the two mechanisms separately: redundancy elimination reduces messages
*and* bytes, combining reduces messages at constant bytes.
"""

from __future__ import annotations

from repro.core.pipeline import Strategy, compile_all_strategies
from repro.evaluation.programs import BENCHMARKS
from repro.runtime.spmd import execute_spmd

SMALL = {
    "shallow": {"n": 10, "nsteps": 2, "pr": 2, "pc": 2},
    "gravity": {"n": 10, "pr": 2, "pc": 2},
    "trimesh": {"n": 10, "nsweeps": 2, "pr": 2, "pc": 2},
    "trimesh_gauss": {"n": 10, "nsweeps": 2, "pr": 2, "pc": 2},
    "hydflo_flux": {"n": 10, "nsteps": 1, "pr": 2, "pc": 2},
    "hydflo_hydro": {"n": 10, "nsteps": 2, "pr": 2, "pc": 2},
}


def run_all():
    table = {}
    for program, params in SMALL.items():
        results = compile_all_strategies(BENCHMARKS[program], params=params)
        row = {}
        for strategy, result in results.items():
            _, stats = execute_spmd(result)
            row[strategy.value] = (stats.messages, stats.bytes_moved)
        table[program] = row
    return table


def test_dynamic_message_counts(benchmark):
    table = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    print(f"{'benchmark':15s} {'orig msgs/B':>16s} {'nored msgs/B':>16s} "
          f"{'comb msgs/B':>16s}")
    for program, row in table.items():
        cells = "".join(
            f" {row[v][0]:6d}/{row[v][1]:<8d}" for v in ("orig", "nored", "comb")
        )
        print(f"{program:15s}{cells}")

    for program, row in table.items():
        orig_m, orig_b = row["orig"]
        nored_m, nored_b = row["nored"]
        comb_m, comb_b = row["comb"]
        # messages never increase down the versions
        assert orig_m >= nored_m >= comb_m, program
        # redundancy elimination may not fire (gravity/trimesh), but when
        # it does, bytes drop too; combining never changes bytes
        assert nored_b <= orig_b, program
        assert comb_b == nored_b, program
    # combining strictly reduces wire messages somewhere
    assert any(
        row["comb"][0] < row["nored"][0] for row in table.values()
    )
