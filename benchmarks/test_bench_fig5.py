"""Benchmark: regenerate the paper's Figure 5 network/bcopy profiles."""

from __future__ import annotations

from repro.evaluation.fig5_profile import format_profile, run_all
from repro.machine.model import MACHINES


def test_fig5_bandwidth_profiles(benchmark):
    profiles = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print()
    for profile in profiles:
        print(format_profile(profile))
        print()

    by_name = {p.machine: p for p in profiles}
    for name, machine in MACHINES.items():
        profile = by_name[name]
        # bcopy curve sits above the network curve everywhere (Fig 5 top
        # vs bottom curve).
        for point in profile.points:
            assert point.bcopy_bw >= point.receive_bw
            assert point.inject_bw >= point.receive_bw
        # startup amortization saturates well below the cache limit.
        assert profile.knee(0.8) < machine.cache_bytes

    # The derived combining threshold on the SP2 is in the ~20 KB regime.
    assert 4096 <= by_name["SP2"].knee(0.8) <= 32768
