"""Benchmark: regenerate the paper's Figure 10 message-count table.

Run with ``pytest benchmarks/ --benchmark-only``.  The benchmark times the
full three-version compilation of all six benchmark programs; the printed
table is the reproduction artifact and every row is asserted against the
paper's numbers.
"""

from __future__ import annotations

from repro.evaluation.fig10_table import build_table, format_table


def test_fig10_message_count_table(benchmark):
    rows = benchmark.pedantic(build_table, rounds=1, iterations=1)
    print()
    print(format_table(rows))
    for row in rows:
        assert row.measured == row.paper, (
            f"{row.benchmark}/{row.routine}/{row.comm_type}: "
            f"measured {row.measured} != paper {row.paper}"
        )
