"""Benchmarks: regenerate every running-time panel of the paper's
Figure 10 (charts b-f) on the SP2 and NOW machine models.

Each test simulates the three compiler versions across the panel's
problem-size sweep, prints the normalized series (the paper's bars), and
asserts the qualitative shape: orig >= nored >= comb, communication cut
by roughly 2x or more by the global algorithm, and monotone normalized
ordering at every size.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import Strategy
from repro.evaluation.fig10_charts import CHART_SPECS, format_chart, run_chart

ORIG, NORED, COMB = (s.value for s in Strategy)


def _run_and_check(benchmark, key: str, min_comm_factor: float):
    chart = benchmark.pedantic(run_chart, args=(key,), rounds=1, iterations=1)
    print()
    print(format_chart(chart))
    for p in chart.points:
        assert p.normalized(ORIG) == pytest.approx(1.0)
        assert p.normalized(COMB) <= p.normalized(NORED) + 1e-9
        assert p.normalized(NORED) <= p.normalized(ORIG) + 1e-9
        assert p.comm[COMB] > 0
        assert p.comm[ORIG] / p.comm[COMB] >= min_comm_factor
        assert p.messages[COMB] < p.messages[ORIG]
    return chart


def test_fig10a_sp2_shallow(benchmark):
    _run_and_check(benchmark, "10a-sp2-shallow", min_comm_factor=2.0)


def test_fig10b_sp2_gravity(benchmark):
    _run_and_check(benchmark, "10b-sp2-gravity", min_comm_factor=2.0)


def test_fig10c_now_shallow(benchmark):
    _run_and_check(benchmark, "10c-now-shallow", min_comm_factor=2.0)


def test_fig10d_now_gravity(benchmark):
    _run_and_check(benchmark, "10d-now-gravity", min_comm_factor=2.0)


def test_fig10e_sp2_trimesh(benchmark):
    _run_and_check(benchmark, "10e-sp2-trimesh", min_comm_factor=2.5)


def test_fig10e_sp2_hydflo(benchmark):
    _run_and_check(benchmark, "10e-sp2-hydflo", min_comm_factor=1.3)


def test_fig10f_now_trimesh(benchmark):
    _run_and_check(benchmark, "10f-now-trimesh", min_comm_factor=2.5)


def test_fig10f_now_hydflo(benchmark):
    _run_and_check(benchmark, "10f-now-hydflo", min_comm_factor=1.3)


def test_gains_larger_on_now_than_sp2(benchmark):
    """The paper: 'higher overall performance gains on NOW compared to
    SP2, although the reduction in communication cost alone is roughly
    proportionate'."""

    def both():
        return run_chart("10a-sp2-shallow"), run_chart("10c-now-shallow")

    sp2, now = benchmark.pedantic(both, rounds=1, iterations=1)
    sp2_gain = 1 - sp2.points[2].normalized(COMB)  # n = 512
    now_gain = 1 - now.points[0].normalized(COMB)  # n = 400
    print(f"\nshallow overall gain: SP2 {sp2_gain:.1%} vs NOW {now_gain:.1%}")
    assert now_gain >= sp2_gain * 0.6  # comparable, NOW not worse by much
