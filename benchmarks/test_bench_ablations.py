"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. Greedy entry order (§4.7's most-constrained-first vs alternatives).
2. Combining-threshold sweep (the 20 KB knob from Figure 5).
3. Subset elimination on/off (the paper's §6 warns it must go if overlap
   is ever optimized; here we show it is cost-neutral for message counts).
4. Greedy vs exact optimal placement (§6.1's NP-hardness trade-off).
"""

from __future__ import annotations

import pytest

from repro.core.context import AnalysisContext, CompilerOptions
from repro.core.ilp import (
    assignment_of_result,
    optimal_placement,
    placement_cost,
)
from repro.core.pipeline import Strategy, analyze_entries, compile_program
from repro.evaluation.programs import BENCHMARKS
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize


def test_ablation_greedy_order(benchmark):
    def run():
        out = {}
        for order in ("constrained", "arbitrary", "reversed"):
            options = CompilerOptions(greedy_order=order)
            out[order] = {
                name: compile_program(src, None, Strategy.GLOBAL, options).call_sites()
                for name, src in BENCHMARKS.items()
            }
        return out

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    header = f"{'benchmark':15s}" + "".join(f"{o:>13s}" for o in counts)
    print(header)
    for name in BENCHMARKS:
        print(
            f"{name:15s}"
            + "".join(f"{counts[o][name]:13d}" for o in counts)
        )
    for name in BENCHMARKS:
        best = min(counts[o][name] for o in counts)
        assert counts["constrained"][name] <= best + 1


def test_ablation_combine_threshold(benchmark):
    """Sweeping the threshold: too small kills combining, the paper's
    20 KB recovers it for halo-sized messages."""
    thresholds = [16, 256, 4096, 20480, 1 << 20]

    def run():
        return {
            t: compile_program(
                BENCHMARKS["shallow"],
                None,
                Strategy.GLOBAL,
                CompilerOptions(combine_threshold_bytes=t),
            ).call_sites()
            for t in thresholds
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for t, c in counts.items():
        print(f"  threshold {t:>8d} B -> {c:2d} call sites")
    series = [counts[t] for t in thresholds]
    assert all(a >= b for a, b in zip(series, series[1:]))  # monotone
    assert counts[16] == 14  # nothing combines, redundancy still works
    assert counts[20480] == 8  # the paper's setting


def test_ablation_subset_elimination(benchmark):
    """Subset elimination is a pruning pass: disabling it must not change
    the message counts, only the search effort."""

    def run():
        out = {}
        for enabled in (True, False):
            options = CompilerOptions(enable_subset_elimination=enabled)
            out[enabled] = {
                name: compile_program(src, None, Strategy.GLOBAL, options).call_sites()
                for name, src in BENCHMARKS.items()
            }
        return out

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  with subset elim:    {counts[True]}")
    print(f"  without subset elim: {counts[False]}")
    assert counts[True] == counts[False]


def test_ablation_redundancy_elimination(benchmark):
    """Without §4.6, combining alone cannot reach the paper's counts."""

    def run():
        options = CompilerOptions(enable_redundancy_elimination=False)
        return {
            name: compile_program(src, None, Strategy.GLOBAL, options).call_sites()
            for name, src in BENCHMARKS.items()
        }

    counts = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"  combining-only counts: {counts}")
    # Combining can absorb some redundant entries into existing groups
    # (shallow stays at 8 sites, each carrying more data), but not all:
    # hydflo's flux routine needs one extra exchange without Fig 9f.
    full = {
        name: compile_program(src, None, Strategy.GLOBAL).call_sites()
        for name, src in BENCHMARKS.items()
    }
    for name in BENCHMARKS:
        assert counts[name] >= full[name]
    assert counts["hydflo_flux"] > full["hydflo_flux"]


def test_ablation_push_late_vs_overlap(benchmark):
    """§4.7/§6: the default pushes combined groups late (buffer/cache
    contention beats overlap on the SP2 — 'folk truism'); with CPU-network
    overlap modelled, early placement becomes attractive.  The ablation
    measures all four quadrants."""
    from repro.machine.model import SP2
    from repro.runtime.simulator import simulate

    params = {"n": 512, "pr": 5, "pc": 5}

    def run():
        out = {}
        for placement in ("latest", "earliest"):
            options = CompilerOptions(group_placement=placement)
            result = compile_program(
                BENCHMARKS["shallow"], params, Strategy.GLOBAL, options
            )
            out[placement] = {
                "sites": result.call_sites(),
                "no-overlap": simulate(
                    result, SP2, cache_pressure=True
                ).total_time,
                "overlap": simulate(
                    result, SP2, overlap=True, cache_pressure=True
                ).total_time,
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    for placement, row in data.items():
        print(f"  push-{placement:8s}: {row['sites']} sites, "
              f"no-overlap {row['no-overlap']:.3f}s, "
              f"with-overlap {row['overlap']:.3f}s")
    # Same message counts either way.
    assert data["latest"]["sites"] == data["earliest"]["sites"]
    # Without overlap (the paper's setup), push-late never loses.
    assert data["latest"]["no-overlap"] <= data["earliest"]["no-overlap"] + 1e-9
    # With overlap modelled, early placement hides wire time.
    assert data["earliest"]["overlap"] <= data["earliest"]["no-overlap"]


GAP_SOURCE = """
PROGRAM gap
  PARAM n = 16
  PROCESSORS p(4)
  REAL a(n)
  REAL b(n)
  REAL c(n)
  REAL d(n)
  DISTRIBUTE a(BLOCK) ONTO p
  DISTRIBUTE b(BLOCK) ONTO p
  DISTRIBUTE c(BLOCK) ONTO p
  DISTRIBUTE d(BLOCK) ONTO p
  c(2:n) = a(1:n-1)
  d(2:n) = b(1:n-1) + a(1:n-1)
END
"""


def test_ablation_greedy_vs_optimal(benchmark):
    """§6.1: the optimal assignment is NP-hard in general; on a small
    instance the greedy heuristic must be near-optimal."""

    def run():
        program = parse(GAP_SOURCE)
        info = elaborate(program)
        sprog = scalarize(program, info)
        ctx = AnalysisContext(elaborate(sprog))
        entries = analyze_entries(ctx)
        _, optimal_cost = optimal_placement(ctx, entries)

        result = compile_program(GAP_SOURCE, strategy=Strategy.GLOBAL)
        live = [e for e in result.entries if e.alive]
        greedy_cost = placement_cost(
            result.ctx, assignment_of_result(result), live
        )
        return greedy_cost, optimal_cost

    greedy_cost, optimal_cost = benchmark.pedantic(run, rounds=1, iterations=1)
    gap = greedy_cost / optimal_cost
    print(f"\n  greedy {greedy_cost:.0f} vs optimal {optimal_cost:.0f} "
          f"(gap {gap:.2f}x)")
    assert gap <= 1.5
