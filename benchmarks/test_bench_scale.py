"""Compiler scalability benchmark: placement over synthetically grown
programs.

The paper's algorithm is quadratic-ish in candidate positions x entries
(CommSet comparisons); this benchmark grows a program's statement count
and shows compile time staying tractable, plus the entry/position census
at each size.
"""

from __future__ import annotations

from repro.core.pipeline import Strategy, compile_program


def synthetic_program(phases: int) -> str:
    """``phases`` stencil statements over ``phases`` arrays, all shifted
    reads of the previous phase's output inside one time loop."""
    arrays = [f"x{i}" for i in range(phases + 1)]
    decls = "\n".join(
        f"REAL {a}(n)\nDISTRIBUTE {a}(BLOCK) ONTO p" for a in arrays
    )
    stmts = "\n".join(
        f"{arrays[i + 1]}(2:n-1) = {arrays[i]}(1:n-2) + {arrays[i]}(3:n)"
        for i in range(phases)
    )
    feedback = f"{arrays[0]}(2:n-1) = {arrays[-1]}(2:n-1)"
    return (
        f"PROGRAM scale\nPARAM n = 64\nPROCESSORS p(4)\n{decls}\n"
        f"DO t = 1, 10\n{stmts}\n{feedback}\nEND DO\nEND"
    )


def compile_sizes(sizes: list[int]) -> dict[int, tuple[int, int]]:
    out = {}
    for phases in sizes:
        result = compile_program(synthetic_program(phases), strategy=Strategy.GLOBAL)
        out[phases] = (len(result.entries), result.call_sites())
    return out


def test_bench_scaling_with_program_size(benchmark):
    sizes = [4, 8, 16, 32]
    data = benchmark.pedantic(compile_sizes, args=(sizes,), rounds=1, iterations=1)
    print()
    for phases, (entries, sites) in data.items():
        print(f"  {phases:3d} phases: {entries:3d} entries -> {sites:3d} call sites")
    for phases, (entries, sites) in data.items():
        assert entries == 2 * phases  # two shifted reads per phase
        # each phase's ±1 pair combines at its own boundary: one site per
        # direction per phase
        assert sites == 2 * phases


def test_bench_largest_program(benchmark):
    source = synthetic_program(48)

    result = benchmark(compile_program, source, None, Strategy.GLOBAL)
    assert len(result.entries) == 96
