"""Compiler scalability benchmark: placement over synthetically grown
programs.

The paper's algorithm is quadratic-ish in candidate positions x entries
(CommSet comparisons); this benchmark grows a program's statement count
and shows compile time staying tractable, plus the entry/position census
at each size.
"""

from __future__ import annotations

from repro.core.pipeline import Strategy, compile_program
from repro.perf.bench import synthetic_program


def compile_sizes(sizes: list[int]) -> dict[int, tuple[int, int]]:
    out = {}
    for phases in sizes:
        result = compile_program(synthetic_program(phases), strategy=Strategy.GLOBAL)
        out[phases] = (len(result.entries), result.call_sites())
    return out


def test_bench_scaling_with_program_size(benchmark):
    sizes = [4, 8, 16, 32]
    data = benchmark.pedantic(compile_sizes, args=(sizes,), rounds=1, iterations=1)
    print()
    for phases, (entries, sites) in data.items():
        print(f"  {phases:3d} phases: {entries:3d} entries -> {sites:3d} call sites")
    for phases, (entries, sites) in data.items():
        assert entries == 2 * phases  # two shifted reads per phase
        # each phase's ±1 pair combines at its own boundary: one site per
        # direction per phase
        assert sites == 2 * phases


def test_bench_largest_program(benchmark):
    source = synthetic_program(48)

    result = benchmark(compile_program, source, None, Strategy.GLOBAL)
    assert len(result.entries) == 96
