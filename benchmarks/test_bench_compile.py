"""Compiler-speed benchmarks: how long each phase of the pipeline takes
on the largest benchmark program (hydflo's flux routine, 52 entries)."""

from __future__ import annotations

from repro.core.context import AnalysisContext
from repro.core.pipeline import Strategy, analyze_entries, compile_program, place
from repro.evaluation.programs import BENCHMARKS
from repro.frontend.analysis import elaborate
from repro.frontend.parser import parse
from repro.frontend.scalarizer import scalarize
from repro.machine.model import SP2
from repro.runtime.simulator import simulate

SRC = BENCHMARKS["hydflo_flux"]


def test_bench_parse(benchmark):
    program = benchmark(parse, SRC)
    assert program.name == "hydflo_flux"


def test_bench_frontend_through_scalarize(benchmark):
    def run():
        program = parse(SRC)
        info = elaborate(program)
        return scalarize(program, info)

    sprog = benchmark(run)
    assert sprog.name == "hydflo_flux"


def test_bench_analysis_context(benchmark):
    program = parse(SRC)
    info = elaborate(scalarize(program, elaborate(program)))

    ctx = benchmark(AnalysisContext, info)
    assert ctx.cfg.nodes


def test_bench_entry_analysis(benchmark):
    program = parse(SRC)
    info = elaborate(scalarize(program, elaborate(program)))

    def run():
        return analyze_entries(AnalysisContext(info))

    entries = benchmark(run)
    assert len(entries) == 52


def test_bench_global_placement(benchmark):
    program = parse(SRC)
    info = elaborate(scalarize(program, elaborate(program)))

    def run():
        ctx = AnalysisContext(info)
        entries = analyze_entries(ctx)
        return place(ctx, entries, Strategy.GLOBAL)

    placed, stats = benchmark(run)
    assert len(placed) == 6


def test_bench_full_compile(benchmark):
    result = benchmark(compile_program, SRC)
    assert result.call_sites() == 6


def test_bench_simulation(benchmark):
    result = compile_program(SRC)
    report = benchmark(simulate, result, SP2)
    assert report.total_time > 0
